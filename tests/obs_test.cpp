// Tests for the observability layer (src/obs): RunTracer's .otrace
// container (chunk round-trip, corruption rejection), the Chrome/Perfetto
// export golden, span nesting over a real simulated run, MetricsRegistry
// snapshot math (counters/gauges/histograms, JSON + Prometheus exposition),
// histogram merge/p999 equivalence with the sorted-vector path, and the
// PhaseProfiler enable/disable contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/run_spec.hpp"
#include "common/histogram.hpp"
#include "common/json_writer.hpp"
#include "obs/chrome_export.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/otrace_reader.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/run_tracer.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Decodes every record of `path`; throws on any corruption en route.
std::uint64_t drain(const std::string& path) {
  obs::OtraceReader reader(path);
  obs::TraceRecord record;
  std::uint64_t n = 0;
  while (reader.next(record)) ++n;
  return n;
}

// ------------------------------------------------------------- RunTracer

TEST(RunTracerTest, ChunkRoundTrip) {
  const std::string path = temp_path("roundtrip.otrace");
  obs::RunTracerOptions options;
  options.chunk_capacity = 7;  // tiny: 100 records span 15 chunks
  obs::RunTracer tracer(path, options);
  for (std::uint32_t i = 0; i < 100; ++i) {
    tracer.on_issue(i, 0.001 * i, i % 3 == 0);
  }
  EXPECT_EQ(tracer.total(), 100u);
  EXPECT_EQ(tracer.finish(), 100u);
  EXPECT_EQ(tracer.finish(), 100u);  // idempotent

  obs::OtraceReader reader(path);
  EXPECT_EQ(reader.size(), 100u);
  EXPECT_EQ(reader.num_chunks(), 15u);
  EXPECT_EQ(reader.chunk_capacity(), 7u);
  obs::TraceRecord record;
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(reader.next(record)) << "record " << i;
    EXPECT_EQ(record.type, obs::TraceRecordType::kIssue);
    EXPECT_EQ(record.tx, i);
    EXPECT_DOUBLE_EQ(record.time, 0.001 * i);
    EXPECT_EQ(record.cross, i % 3 == 0);
  }
  EXPECT_FALSE(reader.next(record));

  const obs::TraceSummary summary = obs::OtraceReader(path).summarize();
  EXPECT_EQ(summary.records, 100u);
  EXPECT_EQ(summary.issues, 100u);
  EXPECT_EQ(summary.cross_issues, 34u);  // i % 3 == 0 in [0, 100)
  EXPECT_DOUBLE_EQ(summary.max_time_s, 0.099);
}

TEST(RunTracerTest, EveryRecordTypeRoundTrips) {
  const std::string path = temp_path("alltypes.otrace");
  obs::RunTracer tracer(path);
  tracer.on_issue(7, 1.0, true);
  tracer.on_commit(7, 1.5, 0.5);
  tracer.on_abort(8, 2.25);
  const std::vector<std::uint64_t> queues = {2, 5};
  tracer.on_queue_sample(3.0, queues);
  tracer.on_block_commit(3, 2.5);
  const std::vector<sim::LinkSample> links = {{0, 0.25, 2}};
  tracer.on_link_sample(3.5, links);
  tracer.on_shard_change(2, 4.0, false, 10, 20);
  tracer.on_repartition(5.0, 1, 2, 3);
  EXPECT_EQ(tracer.finish(), 8u);

  obs::OtraceReader reader(path);
  obs::TraceRecord r;
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.type, obs::TraceRecordType::kIssue);
  EXPECT_EQ(r.tx, 7u);
  EXPECT_TRUE(r.cross);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.type, obs::TraceRecordType::kCommit);
  EXPECT_DOUBLE_EQ(r.latency_s, 0.5);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.type, obs::TraceRecordType::kAbort);
  EXPECT_EQ(r.tx, 8u);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.type, obs::TraceRecordType::kQueueSample);
  EXPECT_EQ(r.queues, queues);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.type, obs::TraceRecordType::kBlock);
  EXPECT_EQ(r.shard, 3u);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.type, obs::TraceRecordType::kLinkSample);
  ASSERT_EQ(r.links.size(), 1u);
  EXPECT_EQ(r.links[0].endpoint, 0u);
  EXPECT_DOUBLE_EQ(r.links[0].backlog_s, 0.25);
  EXPECT_EQ(r.links[0].drops, 2u);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.type, obs::TraceRecordType::kShardChange);
  EXPECT_FALSE(r.joined);
  EXPECT_EQ(r.migrated_txs, 10u);
  EXPECT_EQ(r.migrated_utxos, 20u);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.type, obs::TraceRecordType::kRepartition);
  EXPECT_EQ(r.deferred_txs, 3u);
  EXPECT_FALSE(reader.next(r));
}

TEST(RunTracerTest, RecordingAfterFinishThrows) {
  const std::string path = temp_path("finished.otrace");
  obs::RunTracer tracer(path);
  tracer.on_issue(0, 0.0, false);
  tracer.finish();
  EXPECT_THROW(tracer.on_issue(1, 1.0, false), std::runtime_error);
}

TEST(OtraceReaderTest, RejectsCorruptTraces) {
  // Not a trace at all.
  const std::string garbage = temp_path("garbage.otrace");
  spit(garbage, "definitely not an OTRC container");
  EXPECT_THROW(obs::OtraceReader{garbage}, std::runtime_error);

  // A valid trace to mutilate.
  const std::string valid = temp_path("victim.otrace");
  {
    obs::RunTracerOptions options;
    options.chunk_capacity = 8;
    obs::RunTracer tracer(valid, options);
    for (std::uint32_t i = 0; i < 64; ++i) tracer.on_issue(i, 0.1 * i, false);
    tracer.finish();
  }
  const std::string bytes = slurp(valid);
  ASSERT_EQ(drain(valid), 64u);  // sanity: intact trace decodes clean

  // Truncation: the fixed trailer is gone.
  const std::string truncated = temp_path("truncated.otrace");
  spit(truncated, bytes.substr(0, bytes.size() - 5));
  EXPECT_THROW(obs::OtraceReader{truncated}, std::runtime_error);

  // A single flipped payload byte must fail the chunk checksum (or the
  // frame parse) — never decode silently.
  const std::string flipped = temp_path("flipped.otrace");
  std::string mutated = bytes;
  mutated[mutated.size() / 3] ^= 0x40;
  spit(flipped, mutated);
  EXPECT_THROW(drain(flipped), std::runtime_error);
}

// ---------------------------------------------------------- Chrome export

TEST(ChromeExportTest, GoldenExport) {
  const std::string path = temp_path("golden.otrace");
  {
    obs::RunTracerOptions options;
    options.chunk_capacity = 3;  // exercise multi-chunk reads in the export
    obs::RunTracer tracer(path, options);
    tracer.on_issue(7, 1.0, true);
    tracer.on_commit(7, 1.5, 0.5);
    tracer.on_issue(8, 2.0, false);
    tracer.on_abort(8, 2.25);
    tracer.on_block_commit(3, 2.5);
    const std::vector<std::uint64_t> queues = {2, 5};
    tracer.on_queue_sample(3.0, queues);
    const std::vector<sim::LinkSample> links = {{0, 0.25, 2}};
    tracer.on_link_sample(3.5, links);
    tracer.on_shard_change(2, 4.0, false, 10, 20);
    tracer.on_repartition(5.0, 1, 2, 3);
    tracer.finish();
  }
  obs::OtraceReader reader(path);
  std::ostringstream out;
  const std::uint64_t events = obs::write_chrome_trace(reader, out);
  EXPECT_EQ(events, 11u);  // 9 records + 2 process_name metadata events

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"transaction lifecycle\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"shards\"}},\n"
      "{\"cat\":\"tx\",\"name\":\"tx\",\"ph\":\"b\",\"id\":7,\"pid\":1,"
      "\"tid\":0,\"ts\":1000000,\"args\":{\"cross\":1}},\n"
      "{\"cat\":\"tx\",\"name\":\"tx\",\"ph\":\"e\",\"id\":7,\"pid\":1,"
      "\"tid\":0,\"ts\":1500000,\"args\":{\"outcome\":\"commit\","
      "\"latency_us\":500000}},\n"
      "{\"cat\":\"tx\",\"name\":\"tx\",\"ph\":\"b\",\"id\":8,\"pid\":1,"
      "\"tid\":0,\"ts\":2000000,\"args\":{\"cross\":0}},\n"
      "{\"cat\":\"tx\",\"name\":\"tx\",\"ph\":\"e\",\"id\":8,\"pid\":1,"
      "\"tid\":0,\"ts\":2250000,\"args\":{\"outcome\":\"abort\"}},\n"
      "{\"cat\":\"shard\",\"name\":\"block\",\"ph\":\"i\",\"s\":\"t\","
      "\"pid\":2,\"tid\":3,\"ts\":2500000},\n"
      "{\"name\":\"queue\",\"ph\":\"C\",\"pid\":2,\"tid\":0,\"ts\":3000000,"
      "\"args\":{\"s0\":2,\"s1\":5}},\n"
      "{\"name\":\"link_backlog_s\",\"ph\":\"C\",\"pid\":2,\"tid\":0,"
      "\"ts\":3500000,\"args\":{\"e0\":0.25}},\n"
      "{\"cat\":\"churn\",\"name\":\"shard retire\",\"ph\":\"i\",\"s\":\"g\","
      "\"pid\":2,\"tid\":2,\"ts\":4000000,\"args\":{\"migrated_txs\":10,"
      "\"migrated_utxos\":20}},\n"
      "{\"cat\":\"repartition\",\"name\":\"repartition\",\"ph\":\"i\","
      "\"s\":\"g\",\"pid\":2,\"tid\":0,\"ts\":5000000,"
      "\"args\":{\"migrated_txs\":1,\"migrated_utxos\":2,"
      "\"deferred_txs\":3}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(out.str(), expected);

  // The export is a pure function of the trace bytes.
  const std::string json_a = temp_path("golden_a.json");
  const std::string json_b = temp_path("golden_b.json");
  EXPECT_EQ(obs::export_chrome_trace(path, json_a), 11u);
  EXPECT_EQ(obs::export_chrome_trace(path, json_b), 11u);
  EXPECT_EQ(slurp(json_a), slurp(json_b));
}

// ----------------------------------------------- traced simulation run

TEST(RunTracerTest, SimulatedRunProducesWellNestedSpans) {
  workload::BitcoinLikeGenerator generator({}, 11);
  const std::vector<tx::Transaction> txs = generator.generate(400);

  const std::string path = temp_path("simrun.otrace");
  obs::RunTracer tracer(path);
  api::RunSpec spec;
  spec.method = "OptChain";
  spec.num_shards = 4;
  spec.rate_tps = 400.0;
  spec.commit_window_s = 5.0;
  spec.observers = {&tracer};
  const api::RunReport report = api::simulate(spec, txs);
  ASSERT_TRUE(report.sim.has_value());
  const std::uint64_t records = tracer.finish();
  EXPECT_GT(records, 0u);

  // Spans nest: every terminal (commit/abort) closes a previously opened
  // issue, exactly once; timestamps never run backwards (hooks fire in
  // simulated-time order).
  obs::OtraceReader reader(path);
  obs::TraceRecord record;
  std::set<std::uint32_t> open;
  std::uint64_t commits = 0, aborts = 0, issues = 0;
  double last_time = 0.0;
  while (reader.next(record)) {
    EXPECT_GE(record.time, last_time);
    last_time = record.time;
    switch (record.type) {
      case obs::TraceRecordType::kIssue:
        EXPECT_TRUE(open.insert(record.tx).second)
            << "tx " << record.tx << " issued twice";
        ++issues;
        break;
      case obs::TraceRecordType::kCommit:
        EXPECT_EQ(open.erase(record.tx), 1u)
            << "commit without open span for tx " << record.tx;
        ++commits;
        break;
      case obs::TraceRecordType::kAbort:
        EXPECT_EQ(open.erase(record.tx), 1u)
            << "abort without open span for tx " << record.tx;
        ++aborts;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(issues, report.sim->total_txs);
  EXPECT_EQ(commits, report.sim->committed_txs);
  EXPECT_EQ(aborts, report.sim->aborted_txs);
  EXPECT_TRUE(open.empty()) << open.size() << " spans never closed";

  // And the exported JSON covers every record (+ 2 metadata events).
  const std::string json_path = temp_path("simrun.json");
  EXPECT_EQ(obs::export_chrome_trace(path, json_path), records + 2);
}

// -------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, SnapshotMath) {
  obs::MetricsRegistry registry;
  registry.counter("serve.passes").inc(2);
  registry.gauge("serve.rate").set(1.5);
  obs::Histogram& histogram = registry.histogram("lat");
  for (int i = 1; i <= 1000; ++i) histogram.observe(i);

  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_DOUBLE_EQ(histogram.p50(), 500.0);
  EXPECT_DOUBLE_EQ(histogram.p99(), 990.0);
  EXPECT_DOUBLE_EQ(histogram.p999(), 999.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 1000.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 500.5);

  // Stable addresses: a second lookup is the same instrument.
  registry.counter("serve.passes").inc();
  EXPECT_EQ(registry.counter("serve.passes").value(), 3u);

  JsonWriter json;
  registry.write_json(json, "metrics");
  const std::string doc = json.finish();
  EXPECT_NE(doc.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"serve.passes\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"lat\":{\"count\":1000"), std::string::npos);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE serve_passes counter\nserve_passes 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_rate gauge\nserve_rate 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat{quantile=\"0.5\"} 500\n"), std::string::npos);
  EXPECT_NE(text.find("lat{quantile=\"0.999\"} 999\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 1000\n"), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyHistogramIsZero) {
  obs::Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.p50(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.p999(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAndMerge) {
  obs::Histogram evens, odds, combined;
  for (int i = 1; i <= 1000; ++i) {
    (i % 2 == 0 ? evens : odds).observe(i);
    combined.observe(i);
  }
  evens.merge(odds);
  EXPECT_EQ(evens.count(), combined.count());
  EXPECT_DOUBLE_EQ(evens.sum(), combined.sum());
  // Quantiles of the merged histogram are exact over the union.
  EXPECT_DOUBLE_EQ(evens.p50(), combined.p50());
  EXPECT_DOUBLE_EQ(evens.p99(), combined.p99());
  EXPECT_DOUBLE_EQ(evens.p999(), combined.p999());
  EXPECT_EQ(evens.buckets(), combined.buckets());

  // Log-bucket layout: bucket 0 holds sub-unit values, bucket b holds
  // [2^(b-1), 2^b).
  obs::Histogram layout;
  layout.observe(0.5);
  layout.observe(1.0);
  layout.observe(1024.0);
  EXPECT_EQ(layout.buckets()[0], 1u);
  EXPECT_EQ(layout.buckets()[1], 1u);
  EXPECT_EQ(layout.buckets()[11], 1u);
}

// ------------------------------------------------------- common/histogram

TEST(SampleStatsTest, MergeMatchesCombinedAdds) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 5000.0);
  SampleStats a, b, combined;
  std::vector<double> sorted;
  for (int i = 0; i < 4000; ++i) {
    const double value = dist(rng);
    (i % 2 == 0 ? a : b).add(value);
    combined.add(value);
    sorted.push_back(value);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Sums differ only by FP accumulation order; quantiles are exact (the
  // merged store holds the identical sample multiset).
  EXPECT_NEAR(a.sum(), combined.sum(), 1e-6 * combined.sum());
  EXPECT_DOUBLE_EQ(a.p50(), combined.p50());
  EXPECT_DOUBLE_EQ(a.p999(), combined.p999());

  // Golden pin vs the sorted-vector nearest-rank path the serve daemon and
  // batch pipeline used before migrating onto SampleStats.
  std::sort(sorted.begin(), sorted.end());
  const auto nearest_rank = [&sorted](double q) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
  };
  EXPECT_DOUBLE_EQ(combined.p50(), nearest_rank(0.50));
  EXPECT_DOUBLE_EQ(combined.p99(), nearest_rank(0.99));
  EXPECT_DOUBLE_EQ(combined.p999(), nearest_rank(0.999));
}

TEST(IntHistogramTest, MergeAddsCounts) {
  IntHistogram a, b;
  a.add(1, 3);
  a.add(2, 1);
  b.add(2, 2);
  b.add(5, 4);
  a.merge(b);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_EQ(a.count_of(1), 3u);
  EXPECT_EQ(a.count_of(2), 3u);
  EXPECT_EQ(a.count_of(5), 4u);
  EXPECT_EQ(a.max_value(), 5u);
}

// ---------------------------------------------------------- PhaseProfiler

TEST(PhaseProfilerTest, ScopedPhasesAccumulateOnlyWhenEnabled) {
  obs::PhaseProfiler& profiler = obs::PhaseProfiler::instance();
  profiler.reset();
  profiler.set_enabled(false);
  { obs::ScopedPhase timer(obs::Phase::kSimPhaseA); }
  EXPECT_TRUE(profiler.snapshot().empty());

  profiler.set_enabled(true);
  { obs::ScopedPhase timer(obs::Phase::kSimPhaseA); }
  { obs::ScopedPhase timer(obs::Phase::kSimPhaseA); }
  { obs::ScopedPhase timer(obs::Phase::kBatchCommit); }
  profiler.set_enabled(false);

  const std::vector<obs::PhaseEntry> snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);  // enum order, empty slots skipped
  EXPECT_EQ(snapshot[0].phase, "sim.parallel.phase_a");
  EXPECT_EQ(snapshot[0].calls, 2u);
  EXPECT_GE(snapshot[0].seconds, 0.0);
  EXPECT_EQ(snapshot[1].phase, "place.batch.commit");
  EXPECT_EQ(snapshot[1].calls, 1u);

  profiler.reset();
  EXPECT_TRUE(profiler.snapshot().empty());
}

TEST(PhaseProfilerTest, ProfiledRunReportsParallelPhases) {
  workload::BitcoinLikeGenerator generator({}, 5);
  const std::vector<tx::Transaction> txs = generator.generate(600);
  api::RunSpec spec;
  spec.method = "OptChain";
  spec.num_shards = 4;
  spec.rate_tps = 600.0;
  spec.commit_window_s = 5.0;
  spec.sim_jobs = 2;
  spec.profile = true;
  const api::RunReport report = api::simulate(spec, txs);
  ASSERT_TRUE(report.sim.has_value());
  // The parallel engine ran, so both phases must show up in the profile.
  bool saw_phase_a = false, saw_phase_b = false;
  for (const api::ProfileEntry& entry : report.profile) {
    if (entry.phase == "sim.parallel.phase_a") saw_phase_a = true;
    if (entry.phase == "sim.parallel.phase_b") saw_phase_b = true;
    EXPECT_GT(entry.calls, 0u);
  }
  EXPECT_TRUE(saw_phase_a);
  EXPECT_TRUE(saw_phase_b);
  // A profiled run is bit-identical to an unprofiled one.
  api::RunSpec plain = spec;
  plain.profile = false;
  const api::RunReport baseline = api::simulate(plain, txs);
  EXPECT_EQ(report.sim->total_events, baseline.sim->total_events);
  EXPECT_DOUBLE_EQ(report.sim->avg_latency_s, baseline.sim->avg_latency_s);
  // And the profile rows render at the end of the report table.
  EXPECT_NE(report.to_csv().find("profile sim.parallel.phase_b (s)"),
            std::string::npos);
}

}  // namespace
}  // namespace optchain

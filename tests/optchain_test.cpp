// Tests for the OptChain placer (Algorithm 1): T2S-driven affinity, L2S
// balancing, capacity-capped T2S-variant, and end-to-end cross-TX quality
// against the baselines on generated workloads.
#include <gtest/gtest.h>

#include <vector>

#include "api/placement_pipeline.hpp"
#include "core/optchain_placer.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/random_placer.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tan_builder.hpp"

namespace optchain::core {
namespace {

using latency::ShardTiming;
using placement::PlacementRequest;
using placement::ShardAssignment;
using placement::ShardId;

/// Streams a transaction batch through a registry method (the pipeline's
/// dag grows online, as in the real deployment); returns the cross-TX
/// fraction over non-coinbase txs.
double run_placement(std::span<const tx::Transaction> txs,
                     const char* method, std::uint32_t k) {
  api::PlacementPipeline pipeline = api::make_pipeline(method, k, txs);
  return pipeline.place_stream(txs).fraction();
}

TEST(OptChainPlacerTest, CoinbaseBalancesAcrossShards) {
  graph::TanDag dag;
  OptChainPlacer placer(dag);
  ShardAssignment assignment(4);
  // Four coinbase transactions with no timing data: ties must spread by
  // shard size.
  for (tx::TxIndex i = 0; i < 4; ++i) {
    dag.add_node({});
    PlacementRequest request;
    request.index = i;
    const ShardId shard = placer.choose(request, assignment);
    assignment.record(i, shard);
    placer.notify_placed(request, shard);
  }
  for (ShardId s = 0; s < 4; ++s) EXPECT_EQ(assignment.size_of(s), 1u);
}

TEST(OptChainPlacerTest, ChildFollowsParentShard) {
  graph::TanDag dag;
  OptChainPlacer placer(dag);
  ShardAssignment assignment(4);

  dag.add_node({});
  PlacementRequest coinbase;
  coinbase.index = 0;
  const ShardId parent_shard = placer.choose(coinbase, assignment);
  assignment.record(0, parent_shard);
  placer.notify_placed(coinbase, parent_shard);

  dag.add_node(std::vector<graph::NodeId>{0});
  PlacementRequest child;
  child.index = 1;
  const std::vector<tx::TxIndex> inputs{0};
  child.input_txs = inputs;
  const ShardId child_shard = placer.choose(child, assignment);
  EXPECT_EQ(child_shard, parent_shard);
}

TEST(OptChainPlacerTest, L2sSteersCoinbaseToIdleShard) {
  // A coinbase has no T2S mass, so the temporal fitness is pure -0.01·E(j):
  // the idle shard must win regardless of shard sizes.
  graph::TanDag dag;
  OptChainPlacer placer(dag);
  ShardAssignment assignment(2);
  dag.add_node({});
  PlacementRequest request;
  request.index = 0;
  std::vector<ShardTiming> skewed{{0.1, 500.0}, {0.1, 1.0}};  // 0 backlogged
  request.timings = skewed;
  EXPECT_EQ(placer.choose(request, assignment), 1u);
}

TEST(OptChainPlacerTest, L2sPicksIdleOutputShardAmongEqualAffinity) {
  // Parents in shards 0 and 1 give the child equal T2S affinity either way,
  // and the proof phase is identical; the commit-phase term must route the
  // child to the idle shard.
  graph::TanDag dag;
  OptChainPlacer placer(dag);
  ShardAssignment assignment(2);
  std::vector<ShardTiming> balanced{{0.1, 1.0}, {0.1, 1.0}};

  for (tx::TxIndex i = 0; i < 2; ++i) {
    dag.add_node({});
    PlacementRequest coinbase;
    coinbase.index = i;
    coinbase.timings = balanced;
    const ShardId s = placer.choose(coinbase, assignment);
    assignment.record(i, s);
    placer.notify_placed(coinbase, s);
  }
  ASSERT_NE(assignment.shard_of(0), assignment.shard_of(1));

  dag.add_node(std::vector<graph::NodeId>{0, 1});
  PlacementRequest child;
  child.index = 2;
  const std::vector<tx::TxIndex> inputs{0, 1};
  child.input_txs = inputs;
  std::vector<ShardTiming> skewed{{0.1, 1.0}, {0.1, 1.0}};
  skewed[0].mean_verify = 500.0;  // shard 0 deeply backlogged
  child.timings = skewed;
  EXPECT_EQ(placer.choose(child, assignment), 1u);
}

TEST(OptChainPlacerTest, CapacityCapRedirects) {
  graph::TanDag dag;
  OptChainConfig config;
  config.expected_txs = 4;  // k=2, ε=0.1 → cap = 2 per shard
  config.epsilon = 0.0;
  OptChainPlacer placer(dag, config, "T2S-based");
  ShardAssignment assignment(2);

  // Fill shard 0 with two linked transactions.
  dag.add_node({});
  PlacementRequest r0;
  r0.index = 0;
  ShardId s = placer.choose(r0, assignment);
  assignment.record(0, s);
  placer.notify_placed(r0, s);

  dag.add_node(std::vector<graph::NodeId>{0});
  PlacementRequest r1;
  r1.index = 1;
  const std::vector<tx::TxIndex> i1{0};
  r1.input_txs = i1;
  const ShardId s1 = placer.choose(r1, assignment);
  EXPECT_EQ(s1, s);
  assignment.record(1, s1);
  placer.notify_placed(r1, s1);

  // Third linked transaction: preferred shard is full, must divert.
  dag.add_node(std::vector<graph::NodeId>{1});
  PlacementRequest r2;
  r2.index = 2;
  const std::vector<tx::TxIndex> i2{1};
  r2.input_txs = i2;
  const ShardId s2 = placer.choose(r2, assignment);
  EXPECT_NE(s2, s);
}

TEST(OptChainPlacerTest, NotifyCommitsAlpha) {
  graph::TanDag dag;
  OptChainPlacer placer(dag);
  ShardAssignment assignment(4);
  dag.add_node({});
  PlacementRequest request;
  request.index = 0;
  const ShardId shard = placer.choose(request, assignment);
  assignment.record(0, shard);
  placer.notify_placed(request, shard);
  const auto raw = placer.scorer().raw_vector(0);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].shard, shard);
  EXPECT_DOUBLE_EQ(raw[0].value, 0.5);
}

TEST(OptChainPlacerTest, LastScoresExposed) {
  graph::TanDag dag;
  OptChainPlacer placer(dag);
  ShardAssignment assignment(4);
  dag.add_node({});
  PlacementRequest request;
  request.index = 0;
  placer.choose(request, assignment);
  EXPECT_EQ(placer.last_scores().size(), 4u);
}

// ------------------------------------------------- cross-TX quality sweeps

struct QualityCase {
  std::uint32_t k;
  std::uint64_t seed;
};

class CrossTxQualityTest : public ::testing::TestWithParam<QualityCase> {};

/// The paper's Table-I invariants that are robust on the synthetic stream:
/// the informed online methods (T2S, Greedy) land an order of magnitude
/// below random placement, and T2S stays within a small factor of the
/// offline Metis oracle. (On the real Bitcoin data the paper additionally
/// measures Greedy well above T2S; our synthetic communities are temporal,
/// which flatters Greedy's one-hop rule on the cross-TX metric — it pays for
/// it with the temporal imbalance covered by the simulation tests. See
/// EXPERIMENTS.md.)
TEST_P(CrossTxQualityTest, InformedMethodsCrushRandomPlacement) {
  const auto [k, seed] = GetParam();
  workload::BitcoinLikeGenerator gen({}, seed);
  const auto txs = gen.generate(30000);

  const double t2s_cross = run_placement(txs, "T2S", k);
  const double greedy_cross = run_placement(txs, "Greedy", k);
  const double random_cross = run_placement(txs, "OmniLedger", k);

  // Random placement approaches 1 - 1/k for related transactions; with ~2
  // distinct inputs it should be far above 60% for k >= 4.
  EXPECT_GT(random_cross, 0.6);
  // Paper headline: ~10x cross-TX reduction for T2S.
  EXPECT_LT(t2s_cross, random_cross / 4.0);
  EXPECT_LT(greedy_cross, random_cross / 4.0);
  // And T2S tracks the paper's Table-I values (9.3%-21.7% for k=4..64).
  EXPECT_LT(t2s_cross, 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossTxQualityTest,
    ::testing::Values(QualityCase{4, 1}, QualityCase{8, 1}, QualityCase{16, 1},
                      QualityCase{8, 2}, QualityCase{16, 3}),
    [](const ::testing::TestParamInfo<QualityCase>& param_info) {
      return "k" + std::to_string(param_info.param.k) + "_seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace optchain::core

// Parallel-engine determinism suite: sim::parallel::ParallelSimulation must
// be *bit-identical* to the sequential sim::Simulation — every SimResult
// field except the engine-specific event_heap_peak, every observer callback
// in the same order with the same arguments — for both commit protocols,
// all registered placers, churn plans, trace-replay windows, and any worker
// count (jobs = 1 and jobs = 4 must agree with each other and with the
// sequential engine). Comparisons use EXPECT_DOUBLE_EQ, i.e. exact bits,
// because the replay order fixes every floating-point accumulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "api/run_spec.hpp"
#include "sim/parallel/parallel_simulation.hpp"
#include "sim/shard_churn.hpp"
#include "sim/sim_observer.hpp"
#include "sim/simulation.hpp"
#include "trace/trace_source.hpp"
#include "trace/trace_writer.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tx_source.hpp"

namespace optchain {
namespace {

using sim::ProtocolMode;
using sim::parallel::ParallelSimulation;

constexpr std::uint64_t kStreamSeed = 20260729;
constexpr std::size_t kStreamLength = 3000;

std::vector<tx::Transaction> stream() {
  workload::BitcoinLikeGenerator generator({}, kStreamSeed);
  return generator.generate(kStreamLength);
}

sim::SimConfig base_config(ProtocolMode protocol) {
  sim::SimConfig config;
  config.num_shards = 8;
  config.tx_rate_tps = 1000.0;
  config.consensus.txs_per_block = 100;
  config.consensus.block_bytes = 50'000;
  config.consensus.committee_size = 64;
  config.queue_sample_interval_s = 1.0;
  config.commit_window_s = 10.0;
  config.protocol = protocol;
  return config;
}

/// Asserts the full bit-identity contract between two SimResults.
/// event_heap_peak is deliberately excluded (per-group heaps are shallower
/// than one global heap by design); everything else must match exactly.
void expect_bit_identical(const sim::SimResult& sequential,
                          const sim::SimResult& parallel) {
  EXPECT_EQ(parallel.placer_name, sequential.placer_name);
  EXPECT_EQ(parallel.total_txs, sequential.total_txs);
  EXPECT_EQ(parallel.cross_txs, sequential.cross_txs);
  EXPECT_EQ(parallel.committed_txs, sequential.committed_txs);
  EXPECT_EQ(parallel.aborted_txs, sequential.aborted_txs);
  EXPECT_EQ(parallel.completed, sequential.completed);
  EXPECT_EQ(parallel.total_blocks, sequential.total_blocks);
  EXPECT_EQ(parallel.total_events, sequential.total_events);
  EXPECT_DOUBLE_EQ(parallel.duration_s, sequential.duration_s);
  EXPECT_DOUBLE_EQ(parallel.throughput_tps, sequential.throughput_tps);
  EXPECT_DOUBLE_EQ(parallel.avg_latency_s, sequential.avg_latency_s);
  EXPECT_DOUBLE_EQ(parallel.max_latency_s, sequential.max_latency_s);

  EXPECT_EQ(parallel.shard_event_counts, sequential.shard_event_counts);
  EXPECT_EQ(parallel.shard_changes, sequential.shard_changes);
  EXPECT_EQ(parallel.migrated_txs, sequential.migrated_txs);
  EXPECT_EQ(parallel.migrated_utxos, sequential.migrated_utxos);
  EXPECT_EQ(parallel.repartition_events, sequential.repartition_events);
  EXPECT_EQ(parallel.repartition_migrated_txs,
            sequential.repartition_migrated_txs);
  EXPECT_EQ(parallel.repartition_migrated_utxos,
            sequential.repartition_migrated_utxos);
  EXPECT_EQ(parallel.repartition_deferred_txs,
            sequential.repartition_deferred_txs);
  EXPECT_EQ(parallel.final_shard_sizes, sequential.final_shard_sizes);

  // Latency distribution: same samples in the same order.
  EXPECT_EQ(parallel.latencies.count(), sequential.latencies.count());
  EXPECT_DOUBLE_EQ(parallel.latencies.average(),
                   sequential.latencies.average());
  EXPECT_DOUBLE_EQ(parallel.latencies.maximum(),
                   sequential.latencies.maximum());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(parallel.latencies.quantile(q),
                     sequential.latencies.quantile(q));
  }

  EXPECT_EQ(parallel.commits_per_window.counts(),
            sequential.commits_per_window.counts());

  const auto& seq_snaps = sequential.queue_tracker.snapshots();
  const auto& par_snaps = parallel.queue_tracker.snapshots();
  ASSERT_EQ(par_snaps.size(), seq_snaps.size());
  for (std::size_t i = 0; i < seq_snaps.size(); ++i) {
    EXPECT_DOUBLE_EQ(par_snaps[i].time, seq_snaps[i].time);
    EXPECT_EQ(par_snaps[i].max_queue, seq_snaps[i].max_queue);
    EXPECT_EQ(par_snaps[i].min_queue, seq_snaps[i].min_queue);
  }
  EXPECT_EQ(parallel.queue_tracker.global_max(),
            sequential.queue_tracker.global_max());
}

sim::SimResult run_sequential(const sim::SimConfig& config,
                              const std::string& method,
                              const std::vector<tx::Transaction>& txs) {
  api::PlacementPipeline pipeline =
      api::make_pipeline(method, config.num_shards, txs);
  sim::Simulation simulation(config);
  return simulation.run(txs, pipeline);
}

sim::SimResult run_parallel(const sim::SimConfig& config, std::uint32_t jobs,
                            const std::string& method,
                            const std::vector<tx::Transaction>& txs) {
  api::PlacementPipeline pipeline =
      api::make_pipeline(method, config.num_shards, txs);
  ParallelSimulation simulation(config, jobs);
  return simulation.run(txs, pipeline);
}

// ------------------------------------------------ placer × protocol grid

struct GridCase {
  const char* method;
  ProtocolMode protocol;
};

constexpr GridCase kGrid[] = {
    {"OptChain", ProtocolMode::kOmniLedger},
    {"OptChain", ProtocolMode::kRapidChain},
    {"Greedy", ProtocolMode::kOmniLedger},
    {"Greedy", ProtocolMode::kRapidChain},
    {"T2S", ProtocolMode::kOmniLedger},
    {"T2S", ProtocolMode::kRapidChain},
    {"ShardScheduler", ProtocolMode::kOmniLedger},
    {"ShardScheduler", ProtocolMode::kRapidChain},
};

class ParallelGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(ParallelGridTest, BitIdenticalToSequentialEngine) {
  const GridCase& grid = GetParam();
  const auto txs = stream();
  const sim::SimConfig config = base_config(grid.protocol);
  const sim::SimResult sequential = run_sequential(config, grid.method, txs);
  const sim::SimResult parallel = run_parallel(config, 4, grid.method, txs);
  EXPECT_TRUE(sequential.completed);
  expect_bit_identical(sequential, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParallelGridTest, ::testing::ValuesIn(kGrid),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return std::string(info.param.method) +
             (info.param.protocol == ProtocolMode::kOmniLedger ? "_omni"
                                                               : "_rapid");
    });

// --------------------------------------------------- worker-count freedom

// The shard→worker mapping must be invisible: one worker, four workers and
// the sequential engine all land on the same bits.
TEST(ParallelJobsTest, AnyJobCountProducesTheSameBits) {
  const auto txs = stream();
  const sim::SimConfig config = base_config(ProtocolMode::kOmniLedger);
  const sim::SimResult sequential = run_sequential(config, "OptChain", txs);
  for (std::uint32_t jobs : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const sim::SimResult parallel = run_parallel(config, jobs, "OptChain", txs);
    expect_bit_identical(sequential, parallel);
  }
}

// More workers than shards: the excess workers idle, the bits don't change.
TEST(ParallelJobsTest, MoreWorkersThanShards) {
  const auto txs = stream();
  sim::SimConfig config = base_config(ProtocolMode::kRapidChain);
  config.num_shards = 3;
  const sim::SimResult sequential = run_sequential(config, "Greedy", txs);
  const sim::SimResult parallel = run_parallel(config, 8, "Greedy", txs);
  expect_bit_identical(sequential, parallel);
}

// ------------------------------------------------------- observer parity

/// Records every SimObserver callback with its full argument list, so two
/// engines can be compared hook-for-hook in delivery order.
class HookRecorder final : public sim::SimObserver {
 public:
  struct Entry {
    char kind;  // I/C/A/Q/B/S
    std::uint32_t id = 0;
    double time = 0.0;
    double value = 0.0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  void on_issue(std::uint32_t tx, double time, bool cross) override {
    entries.push_back({'I', tx, time, 0.0, cross ? 1u : 0u, 0});
  }
  void on_commit(std::uint32_t tx, double time, double latency_s) override {
    entries.push_back({'C', tx, time, latency_s, 0, 0});
  }
  void on_abort(std::uint32_t tx, double time) override {
    entries.push_back({'A', tx, time, 0.0, 0, 0});
  }
  void on_queue_sample(double time,
                       std::span<const std::uint64_t> queues) override {
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    for (std::uint64_t q : queues) {
      sum += q;
      if (q > max) max = q;
    }
    entries.push_back({'Q', static_cast<std::uint32_t>(queues.size()), time,
                       0.0, sum, max});
  }
  void on_block_commit(std::uint32_t shard, double time) override {
    entries.push_back({'B', shard, time, 0.0, 0, 0});
  }
  void on_shard_change(std::uint32_t shard, double time, bool joined,
                       std::uint64_t migrated_txs,
                       std::uint64_t migrated_utxos) override {
    entries.push_back(
        {'S', shard, time, joined ? 1.0 : 0.0, migrated_txs, migrated_utxos});
  }

  std::vector<Entry> entries;
};

// Every observer callback — issue, commit, abort, queue sample, block
// commit — arrives in the same order with the same arguments on both
// engines (the record streams are merged back into event-key order before
// delivery).
TEST(ParallelObserverTest, CallbacksMatchSequentialOrderExactly) {
  const auto txs = stream();
  for (ProtocolMode protocol :
       {ProtocolMode::kOmniLedger, ProtocolMode::kRapidChain}) {
    HookRecorder sequential_hooks, parallel_hooks;
    sim::SimConfig config = base_config(protocol);

    config.observers = {&sequential_hooks};
    const sim::SimResult sequential = run_sequential(config, "OptChain", txs);
    config.observers = {&parallel_hooks};
    const sim::SimResult parallel = run_parallel(config, 4, "OptChain", txs);

    expect_bit_identical(sequential, parallel);
    ASSERT_EQ(parallel_hooks.entries.size(), sequential_hooks.entries.size());
    EXPECT_EQ(parallel_hooks.entries, sequential_hooks.entries);
  }
}

// ------------------------------------------------------------- churn plans

// A scripted add + remove plan: the membership changes cut the lookahead
// windows, queues/mempools/ledger partitions migrate across workers, and
// the results (migration accounting and shard-change hooks included) stay
// bit-identical.
TEST(ParallelChurnTest, AddAndRemovePlansStayBitIdentical) {
  workload::BitcoinLikeGenerator generator({}, 7);
  const auto txs = generator.generate(2000);
  for (const char* method : {"OptChain", "ShardScheduler"}) {
    SCOPED_TRACE(method);
    HookRecorder sequential_hooks, parallel_hooks;
    sim::SimConfig config = base_config(ProtocolMode::kOmniLedger);
    config.num_shards = 6;
    config.tx_rate_tps = 500.0;
    config.commit_window_s = 2.0;
    config.churn.events = {
        {1.0, sim::ChurnKind::kRemoveShard, sim::ShardChurnEvent::kAutoShard},
        {2.0, sim::ChurnKind::kAddShard, 0},
        {2.5, sim::ChurnKind::kRemoveShard, sim::ShardChurnEvent::kAutoShard},
    };

    config.observers = {&sequential_hooks};
    const sim::SimResult sequential = run_sequential(config, method, txs);
    config.observers = {&parallel_hooks};
    const sim::SimResult parallel = run_parallel(config, 4, method, txs);

    EXPECT_EQ(sequential.shard_changes, 3u);
    expect_bit_identical(sequential, parallel);
    EXPECT_EQ(parallel_hooks.entries, sequential_hooks.entries);
  }
}

// ------------------------------------------------------ trace replay

// A windowed trace replay ([500, 2500) of an on-disk stream) through both
// engines: the streamed TxSource path and the window's synthesized external
// fundings behave identically.
TEST(ParallelTraceTest, WindowedTraceReplayStaysBitIdentical) {
  const auto txs = stream();
  const std::string path = ::testing::TempDir() + "/parallel_replay.optx";
  {
    trace::TraceWriter writer(path, {.chunk_capacity = 256});
    for (const tx::Transaction& transaction : txs) writer.append(transaction);
    ASSERT_EQ(writer.finish(), txs.size());
  }
  constexpr std::uint64_t kBegin = 500;
  constexpr std::uint64_t kEnd = 2500;
  const sim::SimConfig config = base_config(ProtocolMode::kOmniLedger);

  trace::TraceTxSource sequential_source(path, kBegin, kEnd);
  api::PlacementPipeline sequential_pipeline = api::make_pipeline(
      "OptChain", config.num_shards, {}, 1, {}, kEnd - kBegin);
  sim::Simulation sequential_sim(config);
  const sim::SimResult sequential =
      sequential_sim.run(sequential_source, sequential_pipeline);

  trace::TraceTxSource parallel_source(path, kBegin, kEnd);
  api::PlacementPipeline parallel_pipeline = api::make_pipeline(
      "OptChain", config.num_shards, {}, 1, {}, kEnd - kBegin);
  ParallelSimulation parallel_sim(config, 4);
  const sim::SimResult parallel =
      parallel_sim.run(parallel_source, parallel_pipeline);

  EXPECT_TRUE(sequential.completed);
  expect_bit_identical(sequential, parallel);
}

// ------------------------------------------------------------ API seam

// RunSpec::sim_jobs selects the engine behind api::simulate without
// touching the results — the whole point of the seam.
TEST(ParallelRunSpecTest, SimJobsIsASpeedKnobNotASemanticsKnob) {
  const auto txs = stream();
  api::RunSpec spec;
  spec.method = "OptChain";
  spec.num_shards = 8;
  spec.rate_tps = 1000.0;
  spec.commit_window_s = 10.0;

  const api::RunReport sequential = api::simulate(spec, txs);
  spec.sim_jobs = 4;
  const api::RunReport parallel = api::simulate(spec, txs);

  ASSERT_TRUE(sequential.sim.has_value() && parallel.sim.has_value());
  EXPECT_EQ(parallel.shard_sizes, sequential.shard_sizes);
  expect_bit_identical(*sequential.sim, *parallel.sim);
}

// --------------------------------------------------------- engine basics

TEST(ParallelEngineTest, ReportsItsConfiguration) {
  const sim::SimConfig config = base_config(ProtocolMode::kOmniLedger);
  ParallelSimulation simulation(config, 3);
  EXPECT_EQ(simulation.jobs(), 3u);
  EXPECT_EQ(simulation.config().num_shards, config.num_shards);
}

// The parallel engine still fills event_heap_peak and the per-shard event
// counts; the counts match the sequential engine (contractual), the peak is
// merely positive and no deeper than the sequential global heap's.
TEST(ParallelEngineTest, HeapDiagnosticsAreSane) {
  const auto txs = stream();
  const sim::SimConfig config = base_config(ProtocolMode::kOmniLedger);
  const sim::SimResult sequential = run_sequential(config, "OptChain", txs);
  const sim::SimResult parallel = run_parallel(config, 4, "OptChain", txs);
  EXPECT_GT(parallel.event_heap_peak, 0u);
  EXPECT_LE(parallel.event_heap_peak, sequential.event_heap_peak);
  EXPECT_EQ(parallel.shard_event_counts, sequential.shard_event_counts);
}

}  // namespace
}  // namespace optchain

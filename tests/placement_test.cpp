// Tests for shard assignment bookkeeping and the baseline placers.
#include <gtest/gtest.h>

#include <vector>

#include "common/hash.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/least_loaded_placer.hpp"
#include "placement/random_placer.hpp"
#include "placement/shard_assignment.hpp"
#include "placement/static_placer.hpp"

namespace optchain::placement {
namespace {

TEST(ShardAssignmentTest, RecordAndQuery) {
  ShardAssignment assignment(4);
  assignment.record(0, 2);
  assignment.record(1, 2);
  assignment.record(2, 0);
  EXPECT_EQ(assignment.k(), 4u);
  EXPECT_EQ(assignment.total(), 3u);
  EXPECT_EQ(assignment.shard_of(0), 2u);
  EXPECT_EQ(assignment.size_of(2), 2u);
  EXPECT_EQ(assignment.size_of(1), 0u);
}

TEST(ShardAssignmentTest, InputShardsDeduplicated) {
  ShardAssignment assignment(4);
  assignment.record(0, 1);
  assignment.record(1, 1);
  assignment.record(2, 3);
  const std::vector<tx::TxIndex> inputs{0, 1, 2};
  const auto shards = assignment.input_shards(inputs);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0], 1u);
  EXPECT_EQ(shards[1], 3u);
}

TEST(ShardAssignmentTest, CrossShardDetection) {
  ShardAssignment assignment(4);
  assignment.record(0, 1);
  assignment.record(1, 2);
  const std::vector<tx::TxIndex> both{0, 1};
  const std::vector<tx::TxIndex> only_first{0};
  EXPECT_TRUE(assignment.is_cross_shard(both, 1));   // input 1 elsewhere
  EXPECT_FALSE(assignment.is_cross_shard(only_first, 1));
  EXPECT_TRUE(assignment.is_cross_shard(only_first, 3));
  EXPECT_FALSE(assignment.is_cross_shard({}, 0));    // coinbase never cross
}

TEST(ShardAssignmentTest, LeastLoaded) {
  ShardAssignment assignment(3);
  assignment.record(0, 0);
  assignment.record(1, 2);
  assignment.record(2, 0);
  EXPECT_EQ(assignment.least_loaded(), 1u);
}

TEST(ShardAssignmentDeathTest, OutOfOrderRecordRejected) {
  ShardAssignment assignment(2);
  EXPECT_DEATH(assignment.record(5, 0), "Precondition");
}

TEST(RandomPlacerTest, HashModK) {
  ShardAssignment assignment(8);
  RandomPlacer placer;
  PlacementRequest request;
  request.index = 0;
  request.hash64 = 21;
  EXPECT_EQ(placer.choose(request, assignment), 21u % 8u);
}

TEST(RandomPlacerTest, UniformAcrossShards) {
  ShardAssignment assignment(4);
  RandomPlacer placer;
  std::vector<int> counts(4, 0);
  for (std::uint32_t i = 0; i < 4000; ++i) {
    PlacementRequest request;
    request.index = i;
    request.hash64 = mix64(i);
    ++counts[placer.choose(request, assignment)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(GreedyPlacerTest, FollowsInputs) {
  ShardAssignment assignment(4);
  GreedyPlacer placer(0);  // no cap
  // Seed: txs 0 and 1 in shard 3.
  assignment.record(0, 3);
  assignment.record(1, 3);
  PlacementRequest request;
  request.index = 2;
  const std::vector<tx::TxIndex> inputs{0, 1};
  request.input_txs = inputs;
  EXPECT_EQ(placer.choose(request, assignment), 3u);
}

TEST(GreedyPlacerTest, MajorityShardWins) {
  ShardAssignment assignment(4);
  GreedyPlacer placer(0);
  assignment.record(0, 1);
  assignment.record(1, 1);
  assignment.record(2, 2);
  PlacementRequest request;
  request.index = 3;
  const std::vector<tx::TxIndex> inputs{0, 1, 2};
  request.input_txs = inputs;
  EXPECT_EQ(placer.choose(request, assignment), 1u);
}

TEST(GreedyPlacerTest, PaperTieBreakPicksFirstShard) {
  // The paper's Greedy has no tie-breaking rule: input-less transactions go
  // to the first non-full shard.
  ShardAssignment assignment(3);
  GreedyPlacer placer(0);
  assignment.record(0, 0);
  assignment.record(1, 0);
  assignment.record(2, 1);
  PlacementRequest request;
  request.index = 3;
  EXPECT_EQ(placer.choose(request, assignment), 0u);
}

TEST(GreedyPlacerTest, SmallestShardTieBreakVariant) {
  ShardAssignment assignment(3);
  GreedyPlacer placer(0, 0.1, GreedyTieBreak::kSmallestShard);
  assignment.record(0, 0);
  assignment.record(1, 0);
  assignment.record(2, 1);
  PlacementRequest request;
  request.index = 3;
  EXPECT_EQ(placer.choose(request, assignment), 2u);
}

TEST(GreedyPlacerTest, CapacityCapRedirects) {
  // n = 4, k = 2, ε = 0 → capacity 2 per shard.
  ShardAssignment assignment(2);
  GreedyPlacer placer(4, 0.0);
  assignment.record(0, 0);
  assignment.record(1, 0);  // shard 0 full
  PlacementRequest request;
  request.index = 2;
  const std::vector<tx::TxIndex> inputs{0, 1};
  request.input_txs = inputs;
  // Preferred shard 0 is at capacity; must pick shard 1.
  EXPECT_EQ(placer.choose(request, assignment), 1u);
}

TEST(StaticPlacerTest, ReplaysPartition) {
  ShardAssignment assignment(4);
  StaticPlacer placer({2, 0, 3});
  for (std::uint32_t i = 0; i < 3; ++i) {
    PlacementRequest request;
    request.index = i;
    const ShardId s = placer.choose(request, assignment);
    assignment.record(i, s);
  }
  EXPECT_EQ(assignment.shard_of(0), 2u);
  EXPECT_EQ(assignment.shard_of(1), 0u);
  EXPECT_EQ(assignment.shard_of(2), 3u);
}

TEST(StaticPlacerTest, NameIsConfigurable) {
  StaticPlacer metis({0}, "Metis");
  EXPECT_EQ(metis.name(), "Metis");
}

TEST(LeastLoadedPlacerTest, AlwaysPicksSmallest) {
  ShardAssignment assignment(3);
  LeastLoadedPlacer placer;
  for (std::uint32_t i = 0; i < 9; ++i) {
    PlacementRequest request;
    request.index = i;
    const ShardId s = placer.choose(request, assignment);
    assignment.record(i, s);
  }
  // Perfect balance: every shard has exactly 3.
  for (ShardId s = 0; s < 3; ++s) EXPECT_EQ(assignment.size_of(s), 3u);
}

}  // namespace
}  // namespace optchain::placement

// Tests for the online re-partitioning subsystem (sim/repartition.hpp):
// controller cadence and budget semantics, deferred-migration accounting
// (budget-starved plans drain across consecutive events before any
// recompute), the Fennel streaming baseline's balance/quality bounds,
// repartition × churn interleaving, sequential-vs-parallel bit-identity at
// any sim_jobs, sweep-level determinism, and the ScenarioSpec rejections
// (placement mode; warm_ratio — the Metis warm prefix assumes a static
// assignment).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "api/placer_registry.hpp"
#include "api/run_spec.hpp"
#include "api/scenario_spec.hpp"
#include "api/sweep_runner.hpp"
#include "sim/repartition.hpp"
#include "sim/shard_churn.hpp"
#include "sim/sim_observer.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain {
namespace {

std::vector<tx::Transaction> stream(std::size_t n = 3000,
                                    std::uint64_t seed = 17) {
  workload::BitcoinLikeGenerator generator({}, seed);
  return generator.generate(n);
}

// ------------------------------------------------------------- config

TEST(RepartitionConfigTest, ValidateRejectsNegativeIntervalOnly) {
  sim::RepartitionConfig config;
  EXPECT_FALSE(config.enabled());  // interval 0 disables
  EXPECT_NO_THROW(config.validate());
  config.interval_s = 2.5;
  EXPECT_TRUE(config.enabled());
  EXPECT_NO_THROW(config.validate());
  config.interval_s = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// ------------------------------------------------------- controller unit

/// Hash placement scatters the TaN, so a Metis pass always finds a large
/// move set — the plan is guaranteed non-trivial.
api::PlacementPipeline scattered_pipeline(const std::vector<tx::Transaction>&
                                              txs) {
  api::PlacementPipeline pipeline = api::make_pipeline("OmniLedger", 4, txs);
  pipeline.place_stream(txs);
  return pipeline;
}

TEST(RepartitionControllerTest, UnlimitedBudgetAppliesTheWholePlan) {
  const auto txs = stream();
  api::PlacementPipeline pipeline = scattered_pipeline(txs);
  sim::RepartitionConfig config;
  config.interval_s = 1.0;
  config.seed = 3;
  sim::RepartitionController controller(config);

  const sim::RepartitionOutcome outcome = controller.step(pipeline);
  EXPECT_GT(outcome.applied.size(), 0u);
  EXPECT_EQ(outcome.deferred, 0u);
  EXPECT_EQ(controller.pending(), 0u);
  for (const sim::RepartitionMove& move : outcome.applied) {
    EXPECT_NE(move.from, move.to);
    // The record actually moved: the assignment now agrees with the plan.
    EXPECT_EQ(pipeline.assignment().shard_of(move.tx), move.to);
  }
}

TEST(RepartitionControllerTest, BudgetDefersAndDrainsBeforeRecompute) {
  const auto txs = stream();
  api::PlacementPipeline pipeline = scattered_pipeline(txs);
  sim::RepartitionConfig config;
  config.interval_s = 1.0;
  config.budget = 40;
  config.seed = 3;
  sim::RepartitionController controller(config);

  const sim::RepartitionOutcome first = controller.step(pipeline);
  ASSERT_EQ(first.applied.size(), 40u);  // plan >> budget for hash placement
  ASSERT_GT(first.deferred, 0u);
  EXPECT_EQ(first.deferred, controller.pending());

  // The next event drains the *same* plan — without churn no move goes
  // stale, so the pending count shrinks by exactly the applied count and
  // every move still lands where the plan said.
  const sim::RepartitionOutcome second = controller.step(pipeline);
  EXPECT_EQ(second.applied.size(),
            std::min<std::uint64_t>(40u, first.deferred));
  EXPECT_EQ(second.deferred, first.deferred - second.applied.size());

  // Drain to empty: the total applied across events equals the plan size.
  std::uint64_t applied = first.applied.size() + second.applied.size();
  std::uint64_t guard = 0;
  while (controller.pending() > 0 && ++guard < 1000) {
    applied += controller.step(pipeline).applied.size();
  }
  EXPECT_EQ(controller.pending(), 0u);
  EXPECT_GT(applied, 40u);
}

TEST(RepartitionControllerTest, PlansAreSeedDeterministic) {
  const auto txs = stream();
  sim::RepartitionConfig config;
  config.interval_s = 1.0;
  config.seed = 11;
  for (int round = 0; round < 2; ++round) {
    api::PlacementPipeline a = scattered_pipeline(txs);
    api::PlacementPipeline b = scattered_pipeline(txs);
    sim::RepartitionController first(config);
    sim::RepartitionController second(config);
    const auto out_a = first.step(a);
    const auto out_b = second.step(b);
    ASSERT_EQ(out_a.applied.size(), out_b.applied.size());
    for (std::size_t i = 0; i < out_a.applied.size(); ++i) {
      EXPECT_EQ(out_a.applied[i].tx, out_b.applied[i].tx);
      EXPECT_EQ(out_a.applied[i].to, out_b.applied[i].to);
    }
  }
}

// --------------------------------------------------- simulation cadence

/// Records every on_repartition callback.
struct RepartitionRecorder final : sim::SimObserver {
  struct Entry {
    double time;
    std::uint64_t migrated_txs;
    std::uint64_t migrated_utxos;
    std::uint64_t deferred_txs;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  void on_repartition(double time, std::uint64_t migrated_txs,
                      std::uint64_t migrated_utxos,
                      std::uint64_t deferred_txs) override {
    entries.push_back({time, migrated_txs, migrated_utxos, deferred_txs});
  }

  std::vector<Entry> entries;
};

api::RunSpec repartition_run_spec(const std::string& method) {
  api::RunSpec spec;
  spec.method = method;
  spec.num_shards = 6;
  spec.seed = 7;
  spec.rate_tps = 1000.0;
  spec.commit_window_s = 2.0;
  spec.repartition.interval_s = 0.5;
  spec.repartition.budget = 60;
  return spec;
}

TEST(RepartitionSimulationTest, EventsFireOnCadenceUnderBudget) {
  const auto txs = stream(3000, 7);  // 3 s of issue at 1000 tps
  RepartitionRecorder recorder;
  api::RunSpec spec = repartition_run_spec("OmniLedger");
  spec.observers = {&recorder};
  const api::RunReport report = api::simulate(spec, txs);
  ASSERT_TRUE(report.sim.has_value());
  const sim::SimResult& result = *report.sim;
  EXPECT_TRUE(result.completed);

  // Cadence: ticks at exact interval multiples, first at 0.5, strictly
  // increasing, and they fire even when the plan is empty.
  ASSERT_GE(recorder.entries.size(), 4u);
  for (std::size_t i = 0; i < recorder.entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(recorder.entries[i].time,
                     0.5 * static_cast<double>(i + 1));
  }

  // Budget: no event migrates more than the cap; the hash placement keeps
  // the controller busy enough that deferral is actually exercised.
  std::uint64_t moved = 0, moved_utxos = 0, deferred = 0, max_applied = 0;
  for (const auto& entry : recorder.entries) {
    EXPECT_LE(entry.migrated_txs, 60u);
    max_applied = std::max(max_applied, entry.migrated_txs);
    moved += entry.migrated_txs;
    moved_utxos += entry.migrated_utxos;
    deferred += entry.deferred_txs;
  }
  EXPECT_EQ(max_applied, 60u);
  EXPECT_GT(deferred, 0u);

  // Deferred-plan chaining: while a plan is pending the next event drains
  // it (no recompute), so consecutive deferred counts shrink by exactly the
  // next event's applied count.
  for (std::size_t i = 0; i + 1 < recorder.entries.size(); ++i) {
    if (recorder.entries[i].deferred_txs == 0) continue;
    EXPECT_EQ(recorder.entries[i + 1].deferred_txs,
              recorder.entries[i].deferred_txs -
                  recorder.entries[i + 1].migrated_txs)
        << "event " << i;
  }

  // Hook parity: SimResult's accounting equals the observer's sums.
  EXPECT_EQ(result.repartition_events, recorder.entries.size());
  EXPECT_EQ(result.repartition_migrated_txs, moved);
  EXPECT_EQ(result.repartition_migrated_utxos, moved_utxos);
  EXPECT_EQ(result.repartition_deferred_txs, deferred);
}

TEST(RepartitionSimulationTest, UnlimitedBudgetNeverDefers) {
  const auto txs = stream(2000, 7);
  api::RunSpec spec = repartition_run_spec("OmniLedger");
  spec.repartition.budget = 0;  // unlimited
  const api::RunReport report = api::simulate(spec, txs);
  ASSERT_TRUE(report.sim.has_value());
  EXPECT_GT(report.sim->repartition_events, 0u);
  EXPECT_GT(report.sim->repartition_migrated_txs, 0u);
  EXPECT_EQ(report.sim->repartition_deferred_txs, 0u);
}

// ---------------------------------------------- engine bit-identity pin

/// The acceptance pin: a re-partition run is bit-identical between the
/// sequential engine (sim_jobs = 0) and the parallel engine at 1 and 4
/// workers — repartition ticks are barrier events like churn.
TEST(RepartitionSimulationTest, BitIdenticalAtAnySimJobs) {
  const auto txs = stream(2500, 23);
  for (const char* method : {"OptChain", "Greedy", "Fennel"}) {
    api::RunSpec spec = repartition_run_spec(method);
    spec.repartition.window = 1200;  // exercise the windowed snapshot too
    std::vector<RepartitionRecorder> recorders(3);
    std::vector<api::RunReport> reports;
    const std::uint32_t jobs[] = {0, 1, 4};
    for (std::size_t i = 0; i < 3; ++i) {
      spec.sim_jobs = jobs[i];
      spec.observers = {&recorders[i]};
      reports.push_back(api::simulate(spec, txs));
      ASSERT_TRUE(reports.back().sim.has_value()) << method;
    }
    const sim::SimResult& sequential = *reports[0].sim;
    EXPECT_GT(sequential.repartition_events, 0u) << method;
    EXPECT_GT(sequential.repartition_migrated_txs, 0u) << method;
    for (std::size_t i = 1; i < 3; ++i) {
      const sim::SimResult& parallel = *reports[i].sim;
      EXPECT_EQ(parallel.committed_txs, sequential.committed_txs) << method;
      EXPECT_EQ(parallel.cross_txs, sequential.cross_txs) << method;
      EXPECT_EQ(parallel.total_events, sequential.total_events) << method;
      EXPECT_DOUBLE_EQ(parallel.avg_latency_s, sequential.avg_latency_s)
          << method;
      EXPECT_DOUBLE_EQ(parallel.max_latency_s, sequential.max_latency_s)
          << method;
      EXPECT_EQ(parallel.repartition_events, sequential.repartition_events)
          << method;
      EXPECT_EQ(parallel.repartition_migrated_txs,
                sequential.repartition_migrated_txs)
          << method;
      EXPECT_EQ(parallel.repartition_migrated_utxos,
                sequential.repartition_migrated_utxos)
          << method;
      EXPECT_EQ(parallel.repartition_deferred_txs,
                sequential.repartition_deferred_txs)
          << method;
      EXPECT_EQ(parallel.final_shard_sizes, sequential.final_shard_sizes)
          << method;
      // Observer stream parity: same callbacks, same order, same args.
      EXPECT_EQ(recorders[i].entries, recorders[0].entries) << method;
    }
  }
}

// -------------------------------------------------- repartition × churn

TEST(RepartitionChurnTest, InterleavesWithChurnAndAvoidsRetiredShards) {
  const auto txs = stream(3000, 31);
  api::RunSpec spec = repartition_run_spec("OptChain");
  spec.churn.events = {
      {1.0, sim::ChurnKind::kRemoveShard, sim::ShardChurnEvent::kAutoShard},
      {2.0, sim::ChurnKind::kAddShard, 0},
  };

  struct ChangeRecorder final : sim::SimObserver {
    void on_shard_change(std::uint32_t shard, double /*time*/, bool joined,
                         std::uint64_t, std::uint64_t) override {
      if (!joined) retired.push_back(shard);
    }
    std::vector<std::uint32_t> retired;
  };

  for (const std::uint32_t jobs : {0u, 4u}) {
    ChangeRecorder changes;
    spec.sim_jobs = jobs;
    spec.observers = {&changes};
    const api::RunReport report = api::simulate(spec, txs);
    ASSERT_TRUE(report.sim.has_value());
    const sim::SimResult& result = *report.sim;
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.shard_changes, 2u);
    EXPECT_GT(result.repartition_events, 0u);
    EXPECT_GT(result.repartition_migrated_txs, 0u);
    // The controller never moves a record onto a retired shard: its final
    // size stays exactly zero after the bulk handoff.
    ASSERT_EQ(changes.retired.size(), 1u);
    EXPECT_EQ(result.final_shard_sizes[changes.retired[0]], 0u);
  }

  // Cross-engine: the interleaved run is itself bit-identical.
  spec.sim_jobs = 0;
  spec.observers = {};
  const api::RunReport sequential = api::simulate(spec, txs);
  spec.sim_jobs = 4;
  const api::RunReport parallel = api::simulate(spec, txs);
  EXPECT_EQ(sequential.sim->committed_txs, parallel.sim->committed_txs);
  EXPECT_EQ(sequential.sim->total_events, parallel.sim->total_events);
  EXPECT_DOUBLE_EQ(sequential.sim->avg_latency_s,
                   parallel.sim->avg_latency_s);
  EXPECT_EQ(sequential.sim->repartition_migrated_txs,
            parallel.sim->repartition_migrated_txs);
  EXPECT_EQ(sequential.sim->migrated_txs, parallel.sim->migrated_txs);
  EXPECT_EQ(sequential.shard_sizes, parallel.shard_sizes);
}

// ------------------------------------------------------ Fennel baseline

TEST(FennelPlacerTest, RegisteredBalancedAndBetterThanHashing) {
  EXPECT_TRUE(api::PlacerRegistry::instance().contains("Fennel"));
  EXPECT_TRUE(api::PlacerRegistry::instance().contains("fennel"));

  const auto txs = stream(4000, 11);
  api::PlacementPipeline pipeline = api::make_pipeline("Fennel", 8, txs);
  EXPECT_EQ(pipeline.method_name(), "Fennel");
  const api::StreamOutcome outcome = pipeline.place_stream(txs);

  std::uint64_t placed = 0, largest = 0;
  for (const std::uint64_t size : outcome.shard_sizes) {
    placed += size;
    largest = std::max(largest, size);
  }
  EXPECT_EQ(placed, txs.size());
  // The ν = 1.1 capacity cap bounds the heaviest shard at ν·n/k (one
  // placement of slack for the cap racing the final arrivals).
  EXPECT_LE(static_cast<double>(largest),
            1.1 * static_cast<double>(placed) / 8.0 + 1.0);
  // Quality: the neighborhood term keeps Fennel far below hash placement's
  // ~(1 - 1/k) ≈ 87.5% cross fraction at 8 shards.
  EXPECT_LT(outcome.fraction(), 0.6);
}

TEST(FennelPlacerTest, DeterministicAcrossRuns) {
  const auto txs = stream(2000, 13);
  api::PlacementPipeline a = api::make_pipeline("Fennel", 8, txs);
  api::PlacementPipeline b = api::make_pipeline("Fennel", 8, txs);
  const api::StreamOutcome out_a = a.place_stream(txs);
  const api::StreamOutcome out_b = b.place_stream(txs);
  EXPECT_EQ(out_a.cross, out_b.cross);
  EXPECT_EQ(out_a.shard_sizes, out_b.shard_sizes);
  for (tx::TxIndex i = 0; i < txs.size(); ++i) {
    ASSERT_EQ(a.assignment().shard_of(i), b.assignment().shard_of(i)) << i;
  }
}

// ------------------------------------------------- sweep-level plumbing

TEST(RepartitionSweepTest, ReportsAreBitIdenticalAtAnyJobCount) {
  api::ScenarioSpec spec;
  spec.name = "repartition-test";
  spec.methods = {"OptChain", "Fennel"};
  spec.shards = {4};
  spec.rates = {500.0};
  spec.seeds = {1, 2};
  spec.txs = 900;
  spec.commit_window_s = 2.0;
  spec.repartition.interval_s = 0.4;
  spec.repartition.budget = 50;

  const api::SweepReport serial = api::SweepRunner({.jobs = 1}).run(spec);
  const api::SweepReport parallel = api::SweepRunner({.jobs = 4}).run(spec);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());

  // The re-partition metrics are part of the emitted schema and non-trivial.
  EXPECT_NE(serial.to_csv().find("repartition_events_mean"),
            std::string::npos);
  JsonWriter json_writer;
  serial.write_json(json_writer);
  EXPECT_NE(json_writer.finish().find("repartition_migrated_txs"),
            std::string::npos);
  for (const api::CellReport& cell : serial.cells) {
    EXPECT_GT(cell.repartition_events.mean, 0.0);
  }
}

TEST(RepartitionScenarioTest, ExpandRejectsPlacementMode) {
  api::ScenarioSpec spec;
  spec.mode = api::RunMode::kPlace;
  spec.txs = 100;
  spec.repartition.interval_s = 1.0;
  EXPECT_THROW(spec.expand(), std::invalid_argument);
}

TEST(RepartitionScenarioTest, ExpandRejectsWarmRatioCombination) {
  api::ScenarioSpec spec;
  spec.mode = api::RunMode::kSimulate;
  spec.txs = 100;
  spec.warm_ratio = 2;
  spec.repartition.interval_s = 1.0;
  try {
    spec.expand();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    // The satellite regression: the error names the conflicting knob and
    // says why (the Metis warm prefix assumes a static assignment).
    EXPECT_NE(std::string(error.what()).find("warm"), std::string::npos);
  }
}

}  // namespace
}  // namespace optchain

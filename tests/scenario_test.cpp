// Tests for the declarative experiment layer: ScenarioSpec axis expansion,
// SweepRunner determinism across thread counts, replica aggregation math,
// and the SimObserver golden (observer-collected metrics == the engine's
// own SimResult for a fixed seed).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/run_spec.hpp"
#include "api/scenario_spec.hpp"
#include "api/sweep_runner.hpp"
#include "common/json_writer.hpp"
#include "stats/metrics.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain::api {
namespace {

// ------------------------------------------------------------- expansion

ScenarioSpec grid_spec() {
  ScenarioSpec spec;
  spec.name = "test-grid";
  spec.methods = {"OptChain", "OmniLedger"};
  spec.shards = {4, 8};
  spec.rates = {100.0, 200.0};
  spec.seeds = {1, 2};
  spec.replicas = 2;
  spec.protocol = sim::ProtocolMode::kRapidChain;
  spec.leader_fault_rate = 0.25;
  spec.shard_slowdown = {2.0, 1.0};
  spec.commit_window_s = 7.0;
  spec.queue_sample_interval_s = 3.0;
  spec.txs = 500;
  return spec;
}

TEST(ScenarioSpecTest, AxisExpansionCountsAndOrder) {
  const ScenarioSpec spec = grid_spec();
  EXPECT_EQ(spec.num_cells(), 2u * 2u * 2u * 2u);
  const Sweep sweep = spec.expand();
  ASSERT_EQ(sweep.cells.size(), spec.num_cells() * spec.replicas);
  EXPECT_EQ(sweep.scenario, "test-grid");
  EXPECT_EQ(sweep.replicas, 2u);

  // Nesting order: methods, then shards × rates, then seeds, then replicas.
  const SweepCell& first = sweep.cells[0];
  EXPECT_EQ(first.cell, 0u);
  EXPECT_EQ(first.replica, 0u);
  EXPECT_EQ(first.spec.method, "OptChain");
  EXPECT_EQ(first.spec.num_shards, 4u);
  EXPECT_DOUBLE_EQ(first.spec.rate_tps, 100.0);
  EXPECT_EQ(first.spec.seed, 1u);
  EXPECT_EQ(first.workload_seed, 1u);

  const SweepCell& second = sweep.cells[1];  // replica 1 of the same point
  EXPECT_EQ(second.cell, 0u);
  EXPECT_EQ(second.replica, 1u);
  EXPECT_EQ(second.spec.sim_seed, ScenarioSpec::kBaseSimSeed + 1);
  EXPECT_EQ(first.spec.sim_seed, ScenarioSpec::kBaseSimSeed);

  const SweepCell& third = sweep.cells[2];  // next seed
  EXPECT_EQ(third.cell, 1u);
  EXPECT_EQ(third.spec.seed, 2u);

  const SweepCell& last = sweep.cells.back();
  EXPECT_EQ(last.spec.method, "OmniLedger");
  EXPECT_EQ(last.spec.num_shards, 8u);
  EXPECT_DOUBLE_EQ(last.spec.rate_tps, 200.0);
  EXPECT_EQ(last.spec.seed, 2u);
  EXPECT_EQ(last.replica, 1u);

  // Fixed knobs propagate into every per-cell RunSpec.
  for (const SweepCell& cell : sweep.cells) {
    EXPECT_EQ(cell.spec.protocol, sim::ProtocolMode::kRapidChain);
    EXPECT_DOUBLE_EQ(cell.spec.leader_fault_rate, 0.25);
    EXPECT_EQ(cell.spec.shard_slowdown, (std::vector<double>{2.0, 1.0}));
    EXPECT_DOUBLE_EQ(cell.spec.commit_window_s, 7.0);
    EXPECT_DOUBLE_EQ(cell.spec.queue_sample_interval_s, 3.0);
    EXPECT_EQ(cell.stream_txs, 500u);
    EXPECT_EQ(cell.warm_txs, 0u);  // simulate mode never warms
  }
}

TEST(ScenarioSpecTest, PairingsReplaceTheShardRateGrid) {
  ScenarioSpec spec = grid_spec();
  spec.pairings = {{2000.0, 6}, {3000.0, 8}, {6000.0, 16}};
  EXPECT_EQ(spec.num_cells(),
            spec.methods.size() * 3u * spec.seeds.size());
  const Sweep sweep = spec.expand();
  EXPECT_EQ(sweep.cells[0].spec.num_shards, 6u);
  EXPECT_DOUBLE_EQ(sweep.cells[0].spec.rate_tps, 2000.0);
}

TEST(ScenarioSpecTest, StreamSizedByRateTimesIssueWindow) {
  ScenarioSpec spec;
  spec.txs = 0;
  spec.issue_seconds = 2.0;
  EXPECT_EQ(spec.stream_length(500.0), 1000u);
  spec.txs = 123;
  EXPECT_EQ(spec.stream_length(500.0), 123u);
}

TEST(ScenarioSpecTest, WarmRatioSetsTheWarmPrefix) {
  ScenarioSpec spec;
  spec.mode = RunMode::kPlace;
  spec.txs = 100;
  spec.warm_ratio = 30;
  const Sweep sweep = spec.expand();
  EXPECT_EQ(sweep.cells[0].stream_txs, 100u);
  EXPECT_EQ(sweep.cells[0].warm_txs, 3000u);
}

TEST(ScenarioSpecTest, EmptyAxesThrow) {
  ScenarioSpec spec;
  spec.methods.clear();
  EXPECT_THROW(spec.expand(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.replicas = 0;
  EXPECT_THROW(spec.expand(), std::invalid_argument);
}

// ----------------------------------------------------------- SweepRunner

ScenarioSpec small_sim_spec() {
  ScenarioSpec spec;
  spec.name = "test-sim";
  spec.methods = {"OptChain", "OmniLedger"};
  spec.shards = {4};
  spec.rates = {400.0, 800.0};
  spec.seeds = {7};
  spec.replicas = 2;
  spec.issue_seconds = 1.5;
  spec.commit_window_s = 5.0;
  spec.queue_sample_interval_s = 1.0;
  return spec;
}

TEST(SweepRunnerTest, BitIdenticalAcrossJobCounts) {
  const ScenarioSpec spec = small_sim_spec();
  const SweepReport serial = SweepRunner({.jobs = 1}).run(spec);
  const SweepReport parallel = SweepRunner({.jobs = 4}).run(spec);

  // The full-precision CSV covers every aggregate of every cell at %.17g:
  // equal strings mean bit-identical doubles.
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());

  JsonWriter serial_json, parallel_json;
  serial.write_json(serial_json);
  parallel.write_json(parallel_json);
  EXPECT_EQ(serial_json.finish(), parallel_json.finish());

  // And the raw per-replica reports agree too, not just the aggregates.
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    ASSERT_EQ(serial.cells[c].runs.size(), parallel.cells[c].runs.size());
    for (std::size_t r = 0; r < serial.cells[c].runs.size(); ++r) {
      const RunReport& a = serial.cells[c].runs[r];
      const RunReport& b = parallel.cells[c].runs[r];
      EXPECT_EQ(a.cross, b.cross);
      EXPECT_EQ(a.shard_sizes, b.shard_sizes);
      ASSERT_TRUE(a.sim.has_value() && b.sim.has_value());
      EXPECT_DOUBLE_EQ(a.sim->avg_latency_s, b.sim->avg_latency_s);
      EXPECT_EQ(a.sim->total_events, b.sim->total_events);
    }
  }
}

TEST(SweepRunnerTest, ReplicaAggregationMath) {
  ScenarioSpec spec = small_sim_spec();
  spec.rates = {400.0};
  spec.replicas = 3;
  // Make replicas actually diverge: leader faults are part of the sim
  // seed's stochastic sampling.
  spec.leader_fault_rate = 0.2;
  const SweepReport report = SweepRunner({.jobs = 2}).run(spec);

  ASSERT_EQ(report.cells.size(), 2u);  // two methods × one point
  for (const CellReport& cell : report.cells) {
    ASSERT_EQ(cell.runs.size(), 3u);
    double sum = 0.0, lo = 1e300, hi = -1e300;
    for (const RunReport& run : cell.runs) {
      ASSERT_TRUE(run.sim.has_value());
      sum += run.sim->avg_latency_s;
      lo = std::min(lo, run.sim->avg_latency_s);
      hi = std::max(hi, run.sim->avg_latency_s);
    }
    EXPECT_DOUBLE_EQ(cell.avg_latency_s.mean, sum / 3.0);
    EXPECT_DOUBLE_EQ(cell.avg_latency_s.min, lo);
    EXPECT_DOUBLE_EQ(cell.avg_latency_s.max, hi);
    EXPECT_LE(cell.avg_latency_s.min, cell.avg_latency_s.mean);
    EXPECT_LE(cell.avg_latency_s.mean, cell.avg_latency_s.max);
    // Replica 0 keeps the default sim seed; the different sim seeds should
    // produce different network samplings (and so a min < max spread).
    EXPECT_LT(cell.avg_latency_s.min, cell.avg_latency_s.max);
  }
}

TEST(SweepRunnerTest, CellRunMatchesDirectApiCall) {
  ScenarioSpec spec = small_sim_spec();
  spec.replicas = 1;
  const Sweep sweep = spec.expand();
  const SweepReport report = SweepRunner({.jobs = 1}).run(sweep);

  // Replaying a cell through the plain api:: entry points (same stream,
  // same RunSpec) reproduces the runner's result exactly.
  const SweepCell& cell = sweep.cells[0];
  workload::BitcoinLikeGenerator generator(spec.bitcoin_workload,
                                           cell.workload_seed);
  const auto txs = generator.generate(cell.stream_txs);
  const RunReport direct = simulate(cell.spec, txs);

  const RunReport& run = report.cells[0].runs[0];
  ASSERT_TRUE(run.sim.has_value() && direct.sim.has_value());
  EXPECT_EQ(run.cross, direct.cross);
  EXPECT_EQ(run.total, direct.total);
  EXPECT_EQ(run.sim->total_events, direct.sim->total_events);
  EXPECT_DOUBLE_EQ(run.sim->avg_latency_s, direct.sim->avg_latency_s);
  EXPECT_DOUBLE_EQ(run.sim->throughput_tps, direct.sim->throughput_tps);
  EXPECT_EQ(run.shard_sizes, direct.shard_sizes);
}

TEST(SweepRunnerTest, PlacementModeMatchesDirectPlace) {
  ScenarioSpec spec;
  spec.name = "test-place";
  spec.mode = RunMode::kPlace;
  spec.methods = {"T2S", "Greedy"};
  spec.shards = {4, 8};
  spec.seeds = {3};
  spec.txs = 2000;
  const SweepReport report = SweepRunner({.jobs = 3}).run(spec);
  ASSERT_EQ(report.cells.size(), 4u);

  workload::BitcoinLikeGenerator generator({}, 3);
  const auto txs = generator.generate(2000);
  for (const CellReport& cell : report.cells) {
    RunSpec run_spec;
    run_spec.method = cell.method;
    run_spec.num_shards = cell.num_shards;
    run_spec.seed = cell.seed;
    const RunReport direct = place(run_spec, txs);
    EXPECT_EQ(cell.runs[0].cross, direct.cross);
    EXPECT_EQ(cell.runs[0].total, direct.total);
    EXPECT_EQ(cell.runs[0].shard_sizes, direct.shard_sizes);
    EXPECT_FALSE(cell.runs[0].sim.has_value());
  }
}

// -------------------------------------------------------- observer golden

TEST(SimObserverTest, ExternalMetricsObserverMatchesSimResult) {
  workload::BitcoinLikeGenerator generator({}, 20260729);
  const auto txs = generator.generate(3000);

  RunSpec spec;
  spec.method = "OptChain";
  spec.num_shards = 8;
  spec.rate_tps = 1000.0;
  spec.commit_window_s = 10.0;
  spec.queue_sample_interval_s = 1.0;
  spec.leader_fault_rate = 0.1;  // exercise view-change block commits too

  // The same collector bundle the engine uses internally, attached from the
  // outside through the RunSpec seam: both views of the run must agree
  // exactly — this is the guarantee that lets every figure's metrics come
  // out of observers instead of engine members.
  stats::MetricsObserver observer(spec.commit_window_s);
  spec.observers = {&observer};
  const RunReport report = simulate(spec, txs);
  ASSERT_TRUE(report.sim.has_value());
  const sim::SimResult& result = *report.sim;

  EXPECT_EQ(observer.cross_counter().total(), result.total_txs);
  EXPECT_EQ(observer.cross_counter().cross(), result.cross_txs);
  EXPECT_EQ(observer.committed(), result.committed_txs);
  EXPECT_EQ(observer.aborted(), result.aborted_txs);
  EXPECT_EQ(observer.blocks(), result.total_blocks);
  EXPECT_DOUBLE_EQ(observer.duration_s(), result.duration_s);

  EXPECT_EQ(observer.latencies().count(), result.latencies.count());
  EXPECT_DOUBLE_EQ(observer.latencies().average(), result.avg_latency_s);
  EXPECT_DOUBLE_EQ(observer.latencies().maximum(), result.max_latency_s);

  EXPECT_EQ(observer.commits_per_window().counts(),
            result.commits_per_window.counts());

  const auto& observed = observer.queue_tracker().snapshots();
  const auto& engine = result.queue_tracker.snapshots();
  ASSERT_EQ(observed.size(), engine.size());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    EXPECT_DOUBLE_EQ(observed[i].time, engine[i].time);
    EXPECT_EQ(observed[i].max_queue, engine[i].max_queue);
    EXPECT_EQ(observed[i].min_queue, engine[i].min_queue);
  }
  EXPECT_EQ(observer.queue_tracker().global_max(),
            result.queue_tracker.global_max());
}

}  // namespace
}  // namespace optchain::api

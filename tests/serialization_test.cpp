// Tests for the binary transaction-stream codec.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "txmodel/serialization.hpp"
#include "workload/account_workload.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain::tx {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  for (const std::uint64_t value :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xffffffffULL,
        0xffffffffffffffffULL}) {
    std::vector<std::uint8_t> buffer;
    write_varint(buffer, value);
    std::size_t offset = 0;
    EXPECT_EQ(read_varint(buffer, offset), value);
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buffer;
  write_varint(buffer, 100);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(VarintTest, TruncationThrows) {
  std::vector<std::uint8_t> buffer;
  write_varint(buffer, 1ULL << 40);
  buffer.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(read_varint(buffer, offset), std::runtime_error);
}

TEST(SerializationTest, RoundTripGeneratedStream) {
  workload::BitcoinLikeGenerator generator({}, 21);
  const auto original = generator.generate(5000);
  const auto encoded = encode_transactions(original);
  const auto decoded = decode_transactions(encoded);
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].index, original[i].index);
    EXPECT_EQ(decoded[i].inputs, original[i].inputs);
    EXPECT_EQ(decoded[i].outputs, original[i].outputs);
    EXPECT_EQ(decoded[i].txid(), original[i].txid());
  }
}

TEST(SerializationTest, RoundTripAccountStream) {
  workload::AccountWorkloadGenerator generator({}, 23);
  const auto original = generator.generate(3000);
  const auto decoded = decode_transactions(encode_transactions(original));
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].txid(), original[i].txid());
  }
}

TEST(SerializationTest, EmptyStream) {
  const auto decoded =
      decode_transactions(encode_transactions(std::vector<Transaction>{}));
  EXPECT_TRUE(decoded.empty());
}

TEST(SerializationTest, BadMagicThrows) {
  std::vector<std::uint8_t> bogus = {'N', 'O', 'P', 'E', 1, 0};
  EXPECT_THROW(decode_transactions(bogus), std::runtime_error);
}

TEST(SerializationTest, TruncatedPayloadThrows) {
  workload::BitcoinLikeGenerator generator({}, 25);
  auto encoded = encode_transactions(generator.generate(100));
  encoded.resize(encoded.size() / 2);
  EXPECT_THROW(decode_transactions(encoded), std::runtime_error);
}

TEST(SerializationTest, TrailingBytesThrow) {
  workload::BitcoinLikeGenerator generator({}, 27);
  auto encoded = encode_transactions(generator.generate(50));
  encoded.push_back(0);
  EXPECT_THROW(decode_transactions(encoded), std::runtime_error);
}

TEST(SerializationTest, ForwardReferenceRejected) {
  // Hand-build: 1 transaction whose input references itself.
  std::vector<std::uint8_t> data = {'O', 'P', 'T', 'X'};
  write_varint(data, 1);  // version
  write_varint(data, 1);  // count
  write_varint(data, 1);  // n_inputs
  write_varint(data, 0);  // input tx 0 == own index -> invalid
  write_varint(data, 0);  // vout
  write_varint(data, 0);  // n_outputs
  EXPECT_THROW(decode_transactions(data), std::runtime_error);
}

class SerializationFileTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "optchain_codec_test.bin")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializationFileTest, SaveAndLoad) {
  workload::BitcoinLikeGenerator generator({}, 29);
  const auto original = generator.generate(2000);
  save_transactions(original, path_);
  const auto loaded = load_transactions(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].txid(), original[i].txid());
  }
}

TEST_F(SerializationFileTest, MissingFileThrows) {
  EXPECT_THROW(load_transactions("/nonexistent/stream.bin"),
               std::runtime_error);
}

TEST(SerializationTest, CompactnessVsText) {
  // The binary form should be a small multiple of the information content:
  // well under 20 bytes per transaction for typical streams.
  workload::BitcoinLikeGenerator generator({}, 31);
  const auto txs = generator.generate(10000);
  const auto encoded = encode_transactions(txs);
  EXPECT_LT(encoded.size(), txs.size() * 24);
}

}  // namespace
}  // namespace optchain::tx

// Tests for the binary transaction-stream codec, including the OPTX v1 →
// v2 migration contract: flat v1 files written by save_transactions stay
// readable through the streaming trace::TraceReader / trace::TraceTxSource
// path that replaced the fully-materializing decode in the CLI.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/trace_reader.hpp"
#include "trace/trace_source.hpp"
#include "txmodel/serialization.hpp"
#include "workload/account_workload.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tx_source.hpp"

namespace optchain::tx {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  for (const std::uint64_t value :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xffffffffULL,
        0xffffffffffffffffULL}) {
    std::vector<std::uint8_t> buffer;
    write_varint(buffer, value);
    std::size_t offset = 0;
    EXPECT_EQ(read_varint(buffer, offset), value);
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buffer;
  write_varint(buffer, 100);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(VarintTest, TruncationThrows) {
  std::vector<std::uint8_t> buffer;
  write_varint(buffer, 1ULL << 40);
  buffer.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(read_varint(buffer, offset), std::runtime_error);
}

TEST(SerializationTest, RoundTripGeneratedStream) {
  workload::BitcoinLikeGenerator generator({}, 21);
  const auto original = generator.generate(5000);
  const auto encoded = encode_transactions(original);
  const auto decoded = decode_transactions(encoded);
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].index, original[i].index);
    EXPECT_EQ(decoded[i].inputs, original[i].inputs);
    EXPECT_EQ(decoded[i].outputs, original[i].outputs);
    EXPECT_EQ(decoded[i].txid(), original[i].txid());
  }
}

TEST(SerializationTest, RoundTripAccountStream) {
  workload::AccountWorkloadGenerator generator({}, 23);
  const auto original = generator.generate(3000);
  const auto decoded = decode_transactions(encode_transactions(original));
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].txid(), original[i].txid());
  }
}

TEST(SerializationTest, EmptyStream) {
  const auto decoded =
      decode_transactions(encode_transactions(std::vector<Transaction>{}));
  EXPECT_TRUE(decoded.empty());
}

TEST(SerializationTest, BadMagicThrows) {
  std::vector<std::uint8_t> bogus = {'N', 'O', 'P', 'E', 1, 0};
  EXPECT_THROW(decode_transactions(bogus), std::runtime_error);
}

TEST(SerializationTest, TruncatedPayloadThrows) {
  workload::BitcoinLikeGenerator generator({}, 25);
  auto encoded = encode_transactions(generator.generate(100));
  encoded.resize(encoded.size() / 2);
  EXPECT_THROW(decode_transactions(encoded), std::runtime_error);
}

TEST(SerializationTest, TrailingBytesThrow) {
  workload::BitcoinLikeGenerator generator({}, 27);
  auto encoded = encode_transactions(generator.generate(50));
  encoded.push_back(0);
  EXPECT_THROW(decode_transactions(encoded), std::runtime_error);
}

TEST(SerializationTest, ForwardReferenceRejected) {
  // Hand-build: 1 transaction whose input references itself.
  std::vector<std::uint8_t> data = {'O', 'P', 'T', 'X'};
  write_varint(data, 1);  // version
  write_varint(data, 1);  // count
  write_varint(data, 1);  // n_inputs
  write_varint(data, 0);  // input tx 0 == own index -> invalid
  write_varint(data, 0);  // vout
  write_varint(data, 0);  // n_outputs
  EXPECT_THROW(decode_transactions(data), std::runtime_error);
}

class SerializationFileTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "optchain_codec_test.bin")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializationFileTest, SaveAndLoad) {
  workload::BitcoinLikeGenerator generator({}, 29);
  const auto original = generator.generate(2000);
  save_transactions(original, path_);
  const auto loaded = load_transactions(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].txid(), original[i].txid());
  }
}

TEST_F(SerializationFileTest, MissingFileThrows) {
  EXPECT_THROW(load_transactions("/nonexistent/stream.bin"),
               std::runtime_error);
}

TEST_F(SerializationFileTest, V1FileStreamsThroughTraceReader) {
  // Migration: a flat OPTX v1 file is readable through the streaming trace
  // layer and yields the exact decode_transactions stream.
  workload::BitcoinLikeGenerator generator({}, 33);
  const auto original = generator.generate(1500);
  save_transactions(original, path_);

  trace::TraceReader reader(path_);
  EXPECT_EQ(reader.version(), 1u);
  EXPECT_EQ(reader.size(), original.size());
  EXPECT_EQ(reader.num_chunks(), 0u);  // flat stream: no chunk index
  Transaction transaction;
  for (const Transaction& expected : original) {
    ASSERT_TRUE(reader.next(transaction)) << "tx " << expected.index;
    EXPECT_EQ(transaction.index, expected.index);
    EXPECT_EQ(transaction.inputs, expected.inputs);
    EXPECT_EQ(transaction.outputs, expected.outputs);
  }
  EXPECT_FALSE(reader.next(transaction));
}

TEST_F(SerializationFileTest, V1TrailingGarbageFailsStreamedReplay) {
  // decode_transactions rejects trailing bytes; the streaming reader must
  // keep that guarantee — a bit-rotted count or appended garbage fails
  // loudly instead of replaying a silently truncated stream.
  workload::BitcoinLikeGenerator generator({}, 37);
  const auto original = generator.generate(100);
  save_transactions(original, path_);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.put('\0');
  }
  trace::TraceReader reader(path_);
  Transaction transaction;
  EXPECT_THROW(
      {
        while (reader.next(transaction)) {
        }
      },
      std::runtime_error);
}

TEST_F(SerializationFileTest, V1WindowedReplayDecodeSkips) {
  // v1 has no index, so a window costs a decode-skip — but it must land on
  // exactly the same boundary-policy stream a v2 window produces.
  workload::BitcoinLikeGenerator generator({}, 35);
  const auto original = generator.generate(800);
  save_transactions(original, path_);

  trace::TraceTxSource window(path_, 300, 500);
  ASSERT_TRUE(window.size_hint().has_value());
  EXPECT_EQ(*window.size_hint(), 200u);
  const auto replayed = workload::materialize(window);
  ASSERT_EQ(replayed.size(), 200u);
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    const Transaction& full = original[300 + i];
    EXPECT_EQ(replayed[i].index, i);
    EXPECT_EQ(replayed[i].outputs, full.outputs);
    for (const OutPoint& in : replayed[i].inputs) {
      EXPECT_LT(in.tx, replayed[i].index);  // re-indexed, in-window only
    }
  }
}

TEST(SerializationTest, CompactnessVsText) {
  // The binary form should be a small multiple of the information content:
  // well under 20 bytes per transaction for typical streams.
  workload::BitcoinLikeGenerator generator({}, 31);
  const auto txs = generator.generate(10000);
  const auto encoded = encode_transactions(txs);
  EXPECT_LT(encoded.size(), txs.size() * 24);
}

}  // namespace
}  // namespace optchain::tx

// Tests for the discrete-event simulator: event ordering, network/consensus
// models, shard block production, and full-run invariants (conservation,
// determinism, protocol semantics).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "placement/random_placer.hpp"
#include "sim/consensus.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/shard_node.hpp"
#include "sim/simulation.hpp"
#include "workload/bitcoin_like_generator.hpp"

namespace optchain::sim {
namespace {

// -------------------------------------------------------------- EventQueue

/// Records every dispatched event and its dispatch time.
struct RecordingHandler final : EventHandler {
  explicit RecordingHandler(EventQueue& queue) : queue(&queue) {}
  void on_event(const Event& event) override {
    events.push_back(event);
    times.push_back(queue->now());
  }
  EventQueue* queue;
  std::vector<Event> events;
  std::vector<double> times;
};

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  RecordingHandler handler(queue);
  queue.schedule(3.0, Event::tx_issue(3));
  queue.schedule(1.0, Event::tx_issue(1));
  queue.schedule(2.0, Event::tx_issue(2));
  while (queue.run_one(handler)) {
  }
  ASSERT_EQ(handler.events.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(handler.events[i].tx, i + 1);
    EXPECT_DOUBLE_EQ(handler.times[i], static_cast<double>(i + 1));
  }
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueueTest, TieBreaksByContentKey) {
  // Simultaneous events order by content (rank, shard, tx, ...), not by
  // schedule order: the cross-engine determinism contract. Schedule in a
  // deliberately scrambled order and expect churn < sample < issues-by-tx <
  // shard-addressed-by-shard.
  EventQueue queue;
  RecordingHandler handler(queue);
  queue.schedule(1.0, Event::tx_issue(3));
  queue.schedule(1.0, Event::deliver(EventType::kTxDeliver, 5, 9));
  queue.schedule(1.0, Event::tx_issue(1));
  queue.schedule(1.0, Event::queue_sample());
  queue.schedule(1.0, Event::deliver(EventType::kTxDeliver, 2, 9));
  queue.schedule(1.0, Event::shard_change(0));
  while (queue.run_one(handler)) {
  }
  ASSERT_EQ(handler.events.size(), 6u);
  EXPECT_EQ(handler.events[0].type, EventType::kShardChange);
  EXPECT_EQ(handler.events[1].type, EventType::kQueueSample);
  EXPECT_EQ(handler.events[2].tx, 1u);
  EXPECT_EQ(handler.events[3].tx, 3u);
  EXPECT_EQ(handler.events[4].shard, 2u);
  EXPECT_EQ(handler.events[5].shard, 5u);
}

TEST(EventQueueTest, IdenticalSimultaneousEventsKeepScheduleOrder) {
  // The seq fallback only kicks in for byte-identical events (same time,
  // same content) — engine-local duplicates where either order is fine.
  EventQueue queue;
  RecordingHandler handler(queue);
  queue.schedule(1.0, Event::tx_issue(7));
  queue.schedule(1.0, Event::tx_issue(7));
  while (queue.run_one(handler)) {
  }
  ASSERT_EQ(handler.events.size(), 2u);
  EXPECT_EQ(handler.events[0].tx, 7u);
  EXPECT_EQ(handler.events[1].tx, 7u);
}

TEST(EventQueueTest, EventsMayScheduleEvents) {
  // A handler reacting to one event by scheduling another (the issue-chain /
  // block-round pattern).
  struct ChainingHandler final : EventHandler {
    explicit ChainingHandler(EventQueue& queue) : queue(&queue) {}
    void on_event(const Event& event) override {
      ++fired;
      if (event.tx == 0) queue->schedule_in(0.5, Event::tx_issue(1));
    }
    EventQueue* queue;
    int fired = 0;
  };
  EventQueue queue;
  ChainingHandler handler(queue);
  queue.schedule(1.0, Event::tx_issue(0));
  while (queue.run_one(handler)) {
  }
  EXPECT_EQ(handler.fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 1.5);
}

TEST(EventQueueTest, RunUntilRespectsHorizon) {
  EventQueue queue;
  RecordingHandler handler(queue);
  queue.schedule(1.0, Event::tx_issue(1));
  queue.schedule(5.0, Event::tx_issue(2));
  EXPECT_EQ(queue.run_until(2.0, handler), 1u);
  EXPECT_EQ(handler.events.size(), 1u);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueueDeathTest, PastSchedulingRejected) {
  EventQueue queue;
  RecordingHandler handler(queue);
  queue.schedule(2.0, Event::tx_issue(0));
  queue.run_one(handler);
  EXPECT_DEATH(queue.schedule(1.0, Event::tx_issue(1)), "Precondition");
}

TEST(EventQueueTest, PodEventRoundTripsPayload) {
  EventQueue queue;
  RecordingHandler handler(queue);
  queue.schedule(1.0, Event::proof(/*tx=*/7, /*from_shard=*/3, true));
  queue.schedule(2.0, Event::round_complete(/*shard=*/5, /*view_change=*/true));
  while (queue.run_one(handler)) {
  }
  ASSERT_EQ(handler.events.size(), 2u);
  EXPECT_EQ(handler.events[0].type, EventType::kProof);
  EXPECT_EQ(handler.events[0].tx, 7u);
  EXPECT_EQ(handler.events[0].shard, 3u);
  EXPECT_EQ(handler.events[0].flag, 1u);
  EXPECT_EQ(handler.events[1].type, EventType::kViewChange);
  EXPECT_EQ(handler.events[1].shard, 5u);
}

// -------------------------------------------------------------- Network

TEST(NetworkModelTest, BaseLatencyFloor) {
  NetworkModel net;
  const Position a{0.0, 0.0};
  EXPECT_DOUBLE_EQ(net.propagation_delay(a, a), 0.100);
}

TEST(NetworkModelTest, DistanceIncreasesLatency) {
  NetworkModel net;
  const Position a{0.0, 0.0};
  const Position near{0.1, 0.0};
  const Position far{1.0, 1.0};
  EXPECT_LT(net.propagation_delay(a, near), net.propagation_delay(a, far));
  // Corner to corner: base + full distance term.
  EXPECT_NEAR(net.propagation_delay(a, far), 0.150, 1e-9);
}

TEST(NetworkModelTest, BandwidthDelaysLargeMessages) {
  NetworkModel net;
  const Position a{0.0, 0.0};
  // 1 MB at 20 Mbps = 0.4 s of serialization.
  EXPECT_NEAR(net.message_delay(a, a, 1'000'000) -
                  net.propagation_delay(a, a),
              0.4, 1e-9);
}

TEST(NetworkModelTest, TransferTimeLinear) {
  NetworkModel net;
  EXPECT_NEAR(net.transfer_time(2'000'000), 2 * net.transfer_time(1'000'000),
              1e-12);
}

// -------------------------------------------------------------- Consensus

TEST(ConsensusModelTest, DurationGrowsWithBlockFill) {
  NetworkModel net;
  Rng rng(1);
  ConsensusModel model({}, net, {0.5, 0.5}, rng);
  const double empty = model.round_duration(0);
  const double half = model.round_duration(1000);
  const double full = model.round_duration(2000);
  EXPECT_LT(empty, half);
  EXPECT_LT(half, full);
}

TEST(ConsensusModelTest, FullBlockInPaperBallpark) {
  // A full 1 MB block over a 400-validator committee should take seconds —
  // that is what bounds per-shard throughput to a few hundred tps, which is
  // the regime the paper's experiments live in.
  NetworkModel net;
  Rng rng(2);
  ConsensusModel model({}, net, {0.5, 0.5}, rng);
  const double full = model.round_duration(2000);
  EXPECT_GT(full, 1.0);
  EXPECT_LT(full, 10.0);
}

TEST(ConsensusModelTest, SmallerCommitteeFaster) {
  NetworkModel net;
  Rng rng(3);
  ConsensusConfig small_c;
  small_c.committee_size = 16;
  ConsensusConfig big_c;
  big_c.committee_size = 1024;
  ConsensusModel small_m(small_c, net, {0.5, 0.5}, rng);
  ConsensusModel big_m(big_c, net, {0.5, 0.5}, rng);
  EXPECT_LT(small_m.round_duration(2000), big_m.round_duration(2000));
}

// -------------------------------------------------------------- ShardNode

struct CommitLog {
  std::vector<std::pair<QueueItem, SimTime>> items;
};

/// Minimal dispatcher for standalone ShardNode tests: routes round events to
/// the node and kTxDeliver events into its mempool.
struct ShardRouter final : EventHandler {
  explicit ShardRouter(ShardNode& node) : node(&node) {}
  void on_event(const Event& event) override {
    if (node->route_round_event(event)) return;
    ASSERT_EQ(event.type, EventType::kTxDeliver);
    node->enqueue(QueueItem{event.tx, ItemKind::kSameShard});
  }
  ShardNode* node;
};

TEST(ShardNodeTest, ProcessesQueueInBlocks) {
  EventQueue events;
  NetworkModel net;
  Rng rng(4);
  ConsensusConfig consensus;
  consensus.txs_per_block = 2;  // tiny blocks to observe batching
  CommitLog log;
  ShardNode shard(0, {0.5, 0.5}, ConsensusModel(consensus, net, {0.5, 0.5}, rng),
                  events, [&](std::uint32_t, const QueueItem& item, SimTime t) {
                    log.items.emplace_back(item, t);
                  });
  ShardRouter router(shard);

  for (std::uint32_t i = 0; i < 5; ++i) {
    shard.enqueue(QueueItem{i, ItemKind::kSameShard});
  }
  while (events.run_one(router)) {
  }
  ASSERT_EQ(log.items.size(), 5u);
  // The first enqueue starts a round immediately with just item 0; the rest
  // batch into blocks of 2: {0}, {1,2}, {3,4}.
  EXPECT_EQ(shard.blocks_committed(), 3u);
  EXPECT_EQ(shard.queue_size(), 0u);
  // FIFO order preserved.
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log.items[i].first.tx, i);
  }
  // Items within a block share a commit time; later blocks commit later.
  EXPECT_LT(log.items[0].second, log.items[1].second);
  EXPECT_DOUBLE_EQ(log.items[1].second, log.items[2].second);
  EXPECT_LT(log.items[2].second, log.items[3].second);
  EXPECT_DOUBLE_EQ(log.items[3].second, log.items[4].second);
}

TEST(ShardNodeTest, IdleUntilWorkArrives) {
  EventQueue events;
  NetworkModel net;
  Rng rng(5);
  CommitLog log;
  ShardNode shard(0, {0.5, 0.5}, ConsensusModel({}, net, {0.5, 0.5}, rng),
                  events, [&](std::uint32_t, const QueueItem& item, SimTime t) {
                    log.items.emplace_back(item, t);
                  });
  ShardRouter router(shard);
  EXPECT_TRUE(events.empty());
  events.schedule(10.0, Event::deliver(EventType::kTxDeliver, 0, 0));
  while (events.run_one(router)) {
  }
  ASSERT_EQ(log.items.size(), 1u);
  EXPECT_GT(log.items[0].second, 10.0);
}

TEST(ShardNodeTest, LastRoundDurationTracksBlockSize) {
  EventQueue events;
  NetworkModel net;
  Rng rng(6);
  ShardNode shard(0, {0.5, 0.5}, ConsensusModel({}, net, {0.5, 0.5}, rng),
                  events, [](std::uint32_t, const QueueItem&, SimTime) {});
  ShardRouter router(shard);
  const double initial = shard.last_round_duration();
  shard.enqueue(QueueItem{0, ItemKind::kSameShard});
  while (events.run_one(router)) {
  }
  // One item instead of a full 2000-tx block: the observed round is shorter.
  EXPECT_LT(shard.last_round_duration(), initial);
}

// -------------------------------------------------------------- Simulation

SimConfig small_config(std::uint32_t shards, double rate) {
  SimConfig config;
  config.num_shards = shards;
  config.tx_rate_tps = rate;
  config.consensus.txs_per_block = 100;
  config.consensus.block_bytes = 50'000;
  config.consensus.committee_size = 64;
  config.queue_sample_interval_s = 1.0;
  config.commit_window_s = 10.0;
  return config;
}

std::vector<tx::Transaction> small_stream(std::size_t n,
                                          std::uint64_t seed = 1) {
  workload::BitcoinLikeGenerator gen({}, seed);
  return gen.generate(n);
}

/// Fresh hash-placement pipeline for k shards.
api::PlacementPipeline random_pipeline(std::uint32_t k) {
  return api::PlacementPipeline(k,
                                std::make_unique<placement::RandomPlacer>());
}

TEST(SimulationTest, AllTransactionsCommitExactlyOnce) {
  const auto txs = small_stream(2000);
  Simulation sim(small_config(4, 500.0));
  auto pipeline = random_pipeline(4);
  const SimResult result = sim.run(txs, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs, txs.size());
  EXPECT_EQ(result.latencies.count(), txs.size());
  EXPECT_GT(result.throughput_tps, 0.0);
  EXPECT_GT(result.total_blocks, 0u);
}

TEST(SimulationTest, DeterministicForSameSeed) {
  const auto txs = small_stream(1500);
  SimResult a, b;
  {
    Simulation sim(small_config(4, 500.0));
    auto pipeline = random_pipeline(4);
    a = sim.run(txs, pipeline);
  }
  {
    Simulation sim(small_config(4, 500.0));
    auto pipeline = random_pipeline(4);
    b = sim.run(txs, pipeline);
  }
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
  EXPECT_DOUBLE_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.cross_txs, b.cross_txs);
  EXPECT_EQ(a.total_events, b.total_events);
}

TEST(SimulationTest, DifferentSeedsChangeTopology) {
  const auto txs = small_stream(1000);
  SimConfig config_a = small_config(4, 500.0);
  SimConfig config_b = config_a;
  config_b.seed = 777;
  auto pipeline_a = random_pipeline(4);
  auto pipeline_b = random_pipeline(4);
  const SimResult a = Simulation(config_a).run(txs, pipeline_a);
  const SimResult b = Simulation(config_b).run(txs, pipeline_b);
  EXPECT_NE(a.avg_latency_s, b.avg_latency_s);
}

TEST(SimulationTest, LatencyAtLeastNetworkFloor) {
  const auto txs = small_stream(500);
  Simulation sim(small_config(4, 200.0));
  auto pipeline = random_pipeline(4);
  const SimResult result = sim.run(txs, pipeline);
  // No commit can beat one client->shard hop: > 100 ms.
  EXPECT_GT(result.latencies.quantile(0.0), 0.1);
}

TEST(SimulationTest, CrossFractionMatchesPlacementTheory) {
  // Random placement over k shards leaves related transactions together with
  // probability ~1/k per input; the measured cross fraction must be high.
  const auto txs = small_stream(3000);
  Simulation sim(small_config(8, 1000.0));
  auto pipeline = random_pipeline(8);
  const SimResult result = sim.run(txs, pipeline);
  EXPECT_GT(result.cross_fraction(), 0.6);
}

TEST(SimulationTest, OptChainReducesCrossAndLatency) {
  const auto txs = small_stream(3000);

  auto random = random_pipeline(8);
  const SimResult r_random =
      Simulation(small_config(8, 1000.0)).run(txs, random);

  auto optchain = api::make_pipeline("OptChain", 8);
  const SimResult r_opt =
      Simulation(small_config(8, 1000.0)).run(txs, optchain);

  EXPECT_LT(r_opt.cross_txs, r_random.cross_txs / 2);
  EXPECT_LT(r_opt.avg_latency_s, r_random.avg_latency_s);
}

TEST(SimulationTest, RapidChainModeAlsoCompletes) {
  const auto txs = small_stream(1500);
  SimConfig config = small_config(4, 500.0);
  config.protocol = ProtocolMode::kRapidChain;
  Simulation sim(config);
  auto pipeline = random_pipeline(4);
  const SimResult result = sim.run(txs, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs, txs.size());
}

TEST(SimulationTest, RapidChainFasterThanOmniLedgerOnCrossTxs) {
  // Yanking skips the client round trip, so under identical placement the
  // average latency cannot be (meaningfully) worse.
  const auto txs = small_stream(2000);
  SimConfig omni_config = small_config(4, 400.0);
  SimConfig rapid_config = omni_config;
  rapid_config.protocol = ProtocolMode::kRapidChain;
  auto pipeline_a = random_pipeline(4);
  auto pipeline_b = random_pipeline(4);
  const SimResult omni = Simulation(omni_config).run(txs, pipeline_a);
  const SimResult rapid = Simulation(rapid_config).run(txs, pipeline_b);
  EXPECT_LT(rapid.avg_latency_s, omni.avg_latency_s * 1.02);
}

TEST(SimulationTest, OverloadBacklogRaisesLatency) {
  // Same stream, same shards; 4x the arrival rate must raise avg latency.
  const auto txs = small_stream(3000);
  auto pipeline_slow = random_pipeline(2);
  auto pipeline_fast = random_pipeline(2);
  const SimResult slow =
      Simulation(small_config(2, 200.0)).run(txs, pipeline_slow);
  const SimResult fast =
      Simulation(small_config(2, 2000.0)).run(txs, pipeline_fast);
  EXPECT_GT(fast.avg_latency_s, slow.avg_latency_s);
}

TEST(SimulationTest, QueueTrackerSamples) {
  const auto txs = small_stream(2000);
  Simulation sim(small_config(4, 500.0));
  auto pipeline = random_pipeline(4);
  const SimResult result = sim.run(txs, pipeline);
  EXPECT_GT(result.queue_tracker.snapshots().size(), 2u);
  // Snapshot times are non-decreasing.
  double prev = -1.0;
  for (const auto& snap : result.queue_tracker.snapshots()) {
    EXPECT_GE(snap.time, prev);
    prev = snap.time;
    EXPECT_GE(snap.max_queue, snap.min_queue);
  }
}

TEST(SimulationTest, WindowCountsSumToTotal) {
  const auto txs = small_stream(2000);
  Simulation sim(small_config(4, 500.0));
  auto pipeline = random_pipeline(4);
  const SimResult result = sim.run(txs, pipeline);
  std::uint64_t sum = 0;
  for (const auto c : result.commits_per_window.counts()) sum += c;
  EXPECT_EQ(sum, txs.size());
}

TEST(SimulationTest, ShardSizesSumToTotal) {
  const auto txs = small_stream(1000);
  Simulation sim(small_config(4, 500.0));
  auto pipeline = random_pipeline(4);
  const SimResult result = sim.run(txs, pipeline);
  std::uint64_t sum = 0;
  for (const auto s : result.final_shard_sizes) sum += s;
  EXPECT_EQ(sum, txs.size());
}

TEST(SimulationTest, HorizonAbortReportsIncomplete) {
  const auto txs = small_stream(2000);
  SimConfig config = small_config(1, 100000.0);  // 1 shard, hopeless rate
  config.max_sim_time_s = 1.0;
  Simulation sim(config);
  auto pipeline = random_pipeline(1);
  const SimResult result = sim.run(txs, pipeline);
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.committed_txs, txs.size());
}

// Property sweep: conservation holds across shard counts and protocols.
struct SimCase {
  std::uint32_t shards;
  ProtocolMode protocol;
};

class SimConservationTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimConservationTest, EveryTxCommitsOnce) {
  const auto [shards, protocol] = GetParam();
  const auto txs = small_stream(1200, /*seed=*/shards);
  SimConfig config = small_config(shards, 600.0);
  config.protocol = protocol;
  Simulation sim(config);
  auto pipeline = random_pipeline(shards);
  const SimResult result = sim.run(txs, pipeline);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.committed_txs, txs.size());
  EXPECT_EQ(result.latencies.count(), txs.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimConservationTest,
    ::testing::Values(SimCase{1, ProtocolMode::kOmniLedger},
                      SimCase{2, ProtocolMode::kOmniLedger},
                      SimCase{4, ProtocolMode::kOmniLedger},
                      SimCase{16, ProtocolMode::kOmniLedger},
                      SimCase{4, ProtocolMode::kRapidChain},
                      SimCase{16, ProtocolMode::kRapidChain}),
    [](const ::testing::TestParamInfo<SimCase>& param_info) {
      return "k" + std::to_string(param_info.param.shards) +
             (param_info.param.protocol == ProtocolMode::kOmniLedger ? "_omni"
                                                               : "_rapid");
    });

}  // namespace
}  // namespace optchain::sim

// Tests for the incremental T2S scorer: hand-computed values, equivalence
// with the from-scratch dense recomputation, divisor policies, pruning.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/t2s_scorer.hpp"
#include "graph/dag.hpp"
#include "placement/shard_assignment.hpp"

namespace optchain::core {
namespace {

using graph::NodeId;

TEST(T2sScorerTest, CoinbaseHasZeroScores) {
  graph::TanDag dag;
  placement::ShardAssignment assignment(4);
  T2sScorer scorer;
  dag.add_node({});
  const auto scores = scorer.score(dag, 0, assignment);
  for (const double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_TRUE(scorer.raw_vector(0).empty());
}

TEST(T2sScorerTest, CommitAddsAlpha) {
  graph::TanDag dag;
  placement::ShardAssignment assignment(4);
  T2sScorer scorer;
  dag.add_node({});
  scorer.score(dag, 0, assignment);
  scorer.commit(0, 2);
  const auto raw = scorer.raw_vector(0);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].shard, 2u);
  EXPECT_DOUBLE_EQ(raw[0].value, 0.5);
}

TEST(T2sScorerTest, HandComputedChain) {
  // tx0 (coinbase, shard 0) <- tx1 <- tx2 (also spends tx0).
  graph::TanDag dag;
  placement::ShardAssignment assignment(2);
  T2sScorer scorer;  // alpha = 0.5

  dag.add_node({});
  scorer.score(dag, 0, assignment);
  assignment.record(0, 0);
  scorer.commit(0, 0);

  // tx1 spends tx0: divisor(tx0) = 1 spender so far (tx1 itself).
  dag.add_node(std::vector<NodeId>{0});
  const auto s1 = scorer.score(dag, 1, assignment);
  // p'(1) = 0.5 * (0.5 / 1) = 0.25; p(1)[0] = 0.25 / |S0| = 0.25 / 1.
  EXPECT_DOUBLE_EQ(s1[0], 0.25);
  EXPECT_DOUBLE_EQ(s1[1], 0.0);
  assignment.record(1, 0);
  scorer.commit(1, 0);  // p'(1) = {0: 0.75}

  // tx2 spends tx0 and tx1: divisor(tx0) = 2, divisor(tx1) = 1.
  dag.add_node(std::vector<NodeId>{0, 1});
  const auto s2 = scorer.score(dag, 2, assignment);
  // p'(2) = 0.5 * (0.5/2 + 0.75/1) = 0.5; p(2)[0] = 0.5 / |S0| = 0.5 / 2.
  EXPECT_DOUBLE_EQ(s2[0], 0.25);
  EXPECT_DOUBLE_EQ(s2[1], 0.0);
}

TEST(T2sScorerTest, MassSplitsAcrossShards) {
  // Two coinbase parents in different shards feed one child.
  graph::TanDag dag;
  placement::ShardAssignment assignment(2);
  T2sScorer scorer;
  dag.add_node({});
  scorer.score(dag, 0, assignment);
  assignment.record(0, 0);
  scorer.commit(0, 0);
  dag.add_node({});
  scorer.score(dag, 1, assignment);
  assignment.record(1, 1);
  scorer.commit(1, 1);

  dag.add_node(std::vector<NodeId>{0, 1});
  const auto scores = scorer.score(dag, 2, assignment);
  // p'(2) = 0.5*(0.5/1) at both entries = 0.25 each; each shard has size 1.
  EXPECT_DOUBLE_EQ(scores[0], 0.25);
  EXPECT_DOUBLE_EQ(scores[1], 0.25);
}

TEST(T2sScorerTest, DeclaredOutputsPolicy) {
  // Same chain as HandComputedChain but dividing by declared output counts.
  graph::TanDag dag;
  placement::ShardAssignment assignment(2);
  T2sConfig config;
  config.divisor = DivisorPolicy::kDeclaredOutputs;
  const auto outputs_of = [](tx::TxIndex index) -> std::uint32_t {
    return index == 0 ? 4 : 1;  // tx0 declares 4 outputs
  };
  T2sScorer scorer(config, outputs_of);

  dag.add_node({});
  scorer.score(dag, 0, assignment);
  assignment.record(0, 0);
  scorer.commit(0, 0);

  dag.add_node(std::vector<NodeId>{0});
  const auto s1 = scorer.score(dag, 1, assignment);
  // p'(1) = 0.5 * (0.5/4) = 0.0625.
  EXPECT_DOUBLE_EQ(s1[0], 0.0625);
}

TEST(T2sScorerDeathTest, DeclaredOutputsRequiresCallback) {
  T2sConfig config;
  config.divisor = DivisorPolicy::kDeclaredOutputs;
  EXPECT_DEATH(T2sScorer scorer(config), "Precondition");
}

TEST(T2sScorerTest, AlphaOneKeepsOnlyOwnMass) {
  graph::TanDag dag;
  placement::ShardAssignment assignment(2);
  T2sConfig config;
  config.alpha = 1.0;
  T2sScorer scorer(config);
  dag.add_node({});
  scorer.score(dag, 0, assignment);
  assignment.record(0, 0);
  scorer.commit(0, 0);
  dag.add_node(std::vector<NodeId>{0});
  const auto scores = scorer.score(dag, 1, assignment);
  // (1 - α) = 0: no inherited mass at all.
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

/// Drives a random DAG through the scorer with arbitrary placements and
/// compares every score vector with the dense from-scratch recomputation.
void check_incremental_matches_dense(std::uint64_t seed, std::uint32_t k,
                                     std::size_t n) {
  Rng rng(seed);
  graph::TanDag dag;
  placement::ShardAssignment assignment(k);
  T2sConfig config;
  config.prune_threshold = 0.0;  // exact comparison
  T2sScorer scorer(config);

  std::vector<std::vector<double>> observed;
  for (NodeId u = 0; u < n; ++u) {
    std::vector<NodeId> inputs;
    if (u > 0) {
      const std::uint32_t deg = static_cast<std::uint32_t>(rng.below(4));
      for (std::uint32_t i = 0; i < deg; ++i) {
        inputs.push_back(static_cast<NodeId>(rng.below(u)));
      }
    }
    dag.add_node(inputs);
    observed.push_back(scorer.score(dag, u, assignment));
    const auto shard = static_cast<placement::ShardId>(rng.below(k));
    assignment.record(u, shard);
    scorer.commit(u, shard);
  }

  const auto dense = recompute_all_scores_dense(dag, assignment, config);
  for (NodeId u = 0; u < n; ++u) {
    // The dense table holds p'; compare raw vectors entry by entry.
    std::vector<double> raw(k, 0.0);
    for (const auto& entry : scorer.raw_vector(u)) {
      raw[entry.shard] = entry.value;
    }
    for (std::uint32_t i = 0; i < k; ++i) {
      EXPECT_NEAR(raw[i], dense[u][i], 1e-12)
          << "node " << u << " shard " << i;
    }
  }
}

struct IncrementalCase {
  std::uint64_t seed;
  std::uint32_t k;
  std::size_t n;
};

class T2sIncrementalTest : public ::testing::TestWithParam<IncrementalCase> {};

TEST_P(T2sIncrementalTest, MatchesDenseRecomputation) {
  const auto& param = GetParam();
  check_incremental_matches_dense(param.seed, param.k, param.n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, T2sIncrementalTest,
    ::testing::Values(IncrementalCase{1, 2, 200}, IncrementalCase{2, 4, 200},
                      IncrementalCase{3, 8, 300}, IncrementalCase{4, 16, 300},
                      IncrementalCase{5, 3, 500}, IncrementalCase{6, 64, 150}),
    [](const ::testing::TestParamInfo<IncrementalCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_k" +
             std::to_string(param_info.param.k);
    });

TEST(T2sScorerTest, PruningBoundsMemoryWithSmallError) {
  Rng rng(77);
  graph::TanDag dag;
  placement::ShardAssignment assignment(16);
  T2sConfig pruned_config;
  pruned_config.prune_threshold = 1e-4;
  T2sConfig exact_config;
  exact_config.prune_threshold = 0.0;
  T2sScorer pruned(pruned_config);
  T2sScorer exact(exact_config);

  constexpr std::size_t kNodes = 800;
  for (NodeId u = 0; u < kNodes; ++u) {
    std::vector<NodeId> inputs;
    if (u > 0) {
      const std::uint32_t deg = 1 + static_cast<std::uint32_t>(rng.below(3));
      for (std::uint32_t i = 0; i < deg; ++i) {
        inputs.push_back(static_cast<NodeId>(rng.below(u)));
      }
    }
    dag.add_node(inputs);
    const auto a = pruned.score(dag, u, assignment);
    const auto b = exact.score(dag, u, assignment);
    for (std::uint32_t i = 0; i < 16; ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-3);
    }
    const auto shard = static_cast<placement::ShardId>(rng.below(16));
    assignment.record(u, shard);
    pruned.commit(u, shard);
    exact.commit(u, shard);
  }
  EXPECT_LE(pruned.total_entries(), exact.total_entries());
}

}  // namespace
}  // namespace optchain::core

// Tests for the trace subsystem (src/trace): writer/reader round-trips,
// corruption detection, the windowed boundary policy, index-backed seeks
// that skip the prefix, importer formats, and streamed-trace vs
// direct-generator equivalence through placement, simulation and sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "api/run_spec.hpp"
#include "api/scenario_spec.hpp"
#include "api/sweep_runner.hpp"
#include "trace/trace_import.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_source.hpp"
#include "trace/trace_writer.hpp"
#include "txmodel/serialization.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/dataset_loader.hpp"
#include "workload/tan_builder.hpp"
#include "workload/tx_source.hpp"

namespace optchain::trace {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<tx::Transaction> bitcoin_stream(std::size_t n,
                                            std::uint64_t seed) {
  workload::BitcoinLikeGenerator generator({}, seed);
  return generator.generate(n);
}

/// Writes `txs` into a v2 trace with the given chunk capacity.
std::string write_trace(const std::vector<tx::Transaction>& txs,
                        const std::string& name,
                        std::uint32_t chunk_capacity) {
  const std::string path = temp_path(name);
  TraceWriter writer(path, {.chunk_capacity = chunk_capacity});
  for (const tx::Transaction& transaction : txs) writer.append(transaction);
  EXPECT_EQ(writer.finish(), txs.size());
  return path;
}

void expect_same_tx(const tx::Transaction& a, const tx::Transaction& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(TraceRoundTripTest, MultiChunkRoundTrip) {
  const auto txs = bitcoin_stream(5000, 41);
  const std::string path = write_trace(txs, "roundtrip.optx", 256);

  TraceReader reader(path);
  EXPECT_EQ(reader.version(), 2u);
  EXPECT_EQ(reader.size(), txs.size());
  EXPECT_EQ(reader.chunk_capacity(), 256u);
  EXPECT_EQ(reader.num_chunks(), (txs.size() + 255) / 256);

  tx::Transaction transaction;
  for (const tx::Transaction& expected : txs) {
    ASSERT_TRUE(reader.next(transaction)) << "tx " << expected.index;
    expect_same_tx(transaction, expected);
  }
  EXPECT_FALSE(reader.next(transaction));
  EXPECT_FALSE(reader.next(transaction));  // stays exhausted
  std::remove(path.c_str());
}

TEST(TraceRoundTripTest, EmptyTrace) {
  const std::string path = write_trace({}, "empty.optx", 64);
  TraceReader reader(path);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.num_chunks(), 0u);
  tx::Transaction transaction;
  EXPECT_FALSE(reader.next(transaction));
  std::remove(path.c_str());
}

TEST(TraceRoundTripTest, WriterRejectsMalformedStreams) {
  const std::string path = temp_path("bad_writer.optx");
  {
    TraceWriter writer(path);
    tx::Transaction transaction;
    transaction.index = 3;  // non-dense
    EXPECT_THROW(writer.append(transaction), std::runtime_error);
  }
  {
    TraceWriter writer(path);
    tx::Transaction transaction;
    transaction.index = 0;
    transaction.inputs.push_back({0, 0});  // self reference
    EXPECT_THROW(writer.append(transaction), std::runtime_error);
  }
  EXPECT_THROW(TraceWriter(path, {.chunk_capacity = 0}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceCorruptionTest, BadMagicThrows) {
  const std::string path = temp_path("badmagic.optx");
  std::ofstream(path, std::ios::binary) << "NOPE....";
  EXPECT_THROW(TraceReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceCorruptionTest, MissingFileThrows) {
  EXPECT_THROW(TraceReader{"/nonexistent/trace.optx"}, std::runtime_error);
}

TEST(TraceCorruptionTest, TruncationThrows) {
  const auto txs = bitcoin_stream(1000, 43);
  const std::string path = write_trace(txs, "truncated.optx", 128);
  // Chop the trailer (and some footer) off: the reader must refuse the
  // whole file rather than replay a silently shortened stream.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(size - 20);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  std::ofstream(path, std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_THROW(TraceReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceCorruptionTest, ChecksumCatchesPayloadFlip) {
  const auto txs = bitcoin_stream(1000, 45);
  const std::string path = write_trace(txs, "bitflip.optx", 128);

  TraceReader clean(path);
  ASSERT_GE(clean.num_chunks(), 3u);
  // Flip one byte in the middle of chunk 1's frame (past the two frame
  // varints, inside the payload).
  const std::uint64_t victim = clean.chunks()[1].offset + 8;
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(victim));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(victim));
    file.write(&byte, 1);
  }

  // Decoding through the damaged chunk throws...
  TraceReader reader(path);
  tx::Transaction transaction;
  EXPECT_THROW(
      {
        while (reader.next(transaction)) {
        }
      },
      std::runtime_error);

  // ...but a window that starts past it never reads the damaged bytes:
  // chunk-indexed seeks skip the prefix instead of decoding it.
  const std::uint64_t begin = TraceReader(path).chunks()[2].first_index;
  TraceTxSource window(path, begin);
  std::uint64_t streamed = 0;
  while (window.next(transaction)) ++streamed;
  EXPECT_EQ(streamed, txs.size() - begin);
  std::remove(path.c_str());
}

TEST(TraceSeekTest, WindowedSeekLoadsOnlyWindowChunks) {
  const auto txs = bitcoin_stream(4000, 47);
  const std::string path = write_trace(txs, "seek.optx", 100);

  TraceReader reader(path);
  ASSERT_EQ(reader.num_chunks(), 40u);
  reader.seek(2500);
  tx::Transaction transaction;
  for (std::uint64_t i = 2500; i < 2600; ++i) {
    ASSERT_TRUE(reader.next(transaction));
    expect_same_tx(transaction, txs[static_cast<std::size_t>(i)]);
  }
  // 100 transactions starting chunk-aligned at 2500 span exactly one chunk.
  EXPECT_EQ(reader.chunks_loaded(), 1u);

  // Mid-chunk target: one chunk load, prefix skipped inside the buffer.
  reader.seek(1234);
  ASSERT_TRUE(reader.next(transaction));
  expect_same_tx(transaction, txs[1234]);
  EXPECT_EQ(reader.chunks_loaded(), 2u);

  // seek to end is valid and yields nothing.
  reader.seek(txs.size());
  EXPECT_FALSE(reader.next(transaction));
  EXPECT_THROW(reader.seek(txs.size() + 1), std::out_of_range);
  std::remove(path.c_str());
}

TEST(TraceSourceTest, WindowBoundaryPolicy) {
  // Handmade stream: 0 (coinbase, 2 outputs), 1 spends 0:0, 2 spends 0:1
  // and 1:0, 3 spends 2:0.
  std::vector<tx::Transaction> txs(4);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    txs[i].index = static_cast<tx::TxIndex>(i);
  }
  txs[0].outputs = {{50, 0}, {50, 1}};
  txs[1].inputs = {{0, 0}};
  txs[1].outputs = {{50, 2}};
  txs[2].inputs = {{0, 1}, {1, 0}};
  txs[2].outputs = {{100, 3}};
  txs[3].inputs = {{2, 0}};
  txs[3].outputs = {{100, 4}};
  const std::string path = write_trace(txs, "window.optx", 2);

  TraceTxSource window(path, 2, 4);
  ASSERT_TRUE(window.size_hint().has_value());
  EXPECT_EQ(*window.size_hint(), 2u);

  tx::Transaction transaction;
  // Absolute tx 2 → local 0: both parents (0, 1) precede the window, so
  // they become external funding and the transaction replays as a root.
  ASSERT_TRUE(window.next(transaction));
  EXPECT_EQ(transaction.index, 0u);
  EXPECT_TRUE(transaction.inputs.empty());
  EXPECT_EQ(transaction.outputs, txs[2].outputs);
  // Absolute tx 3 → local 1: its parent 2 is inside the window and is
  // re-indexed to local 0 with the vout preserved.
  ASSERT_TRUE(window.next(transaction));
  EXPECT_EQ(transaction.index, 1u);
  ASSERT_EQ(transaction.inputs.size(), 1u);
  EXPECT_EQ(transaction.inputs[0], (tx::OutPoint{0, 0}));
  EXPECT_FALSE(window.next(transaction));

  // Degenerate windows are rejected loudly.
  EXPECT_THROW(TraceTxSource(path, 3, 2), std::invalid_argument);
  EXPECT_THROW(TraceTxSource(path, 9, TraceTxSource::kToEnd),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST(TraceSourceTest, FullWindowIsBitIdenticalAndRewinds) {
  const auto txs = bitcoin_stream(1500, 49);
  const std::string path = write_trace(txs, "full.optx", 128);

  TraceTxSource source(path);
  for (int pass = 0; pass < 2; ++pass) {
    const auto replayed = workload::materialize(source);
    ASSERT_EQ(replayed.size(), txs.size()) << "pass " << pass;
    for (std::size_t i = 0; i < txs.size(); ++i) {
      expect_same_tx(replayed[i], txs[i]);
    }
    source.rewind();  // replica r+1 replays the same window, same file
  }
  std::remove(path.c_str());
}

TEST(TraceSourceTest, WindowedTanIsInducedSubgraph) {
  const auto txs = bitcoin_stream(2000, 51);
  const std::string path = write_trace(txs, "induced.optx", 256);
  constexpr std::uint64_t kBegin = 700;
  constexpr std::uint64_t kEnd = 1400;

  TraceTxSource window(path, kBegin, kEnd);
  const auto replayed = workload::materialize(window);
  const graph::TanDag windowed = workload::build_tan(replayed);
  const graph::TanDag full = workload::build_tan(txs);

  ASSERT_EQ(windowed.num_nodes(), kEnd - kBegin);
  for (graph::NodeId u = 0; u < windowed.num_nodes(); ++u) {
    // Expected in-neighborhood: the full TaN's edges restricted to the
    // window, re-indexed.
    std::vector<graph::NodeId> expected;
    for (const graph::NodeId v : full.inputs(u + kBegin)) {
      if (v >= kBegin) expected.push_back(v - kBegin);
    }
    const auto actual = windowed.inputs(u);
    EXPECT_EQ(std::vector<graph::NodeId>(actual.begin(), actual.end()),
              expected)
        << "node " << u;
  }
  std::remove(path.c_str());
}

TEST(TraceEquivalenceTest, StreamedTraceMatchesDirectGeneratorPlacement) {
  constexpr std::uint64_t kSeed = 53;
  constexpr std::uint64_t kCount = 3000;
  const std::string path = temp_path("equiv_place.optx");
  {
    workload::GeneratorTxSource generator({}, kSeed, kCount);
    const ImportResult imported =
        import_source(generator, path, {.chunk_capacity = 512});
    EXPECT_EQ(imported.txs, kCount);
  }

  workload::GeneratorTxSource direct({}, kSeed, kCount);
  api::PlacementPipeline expected =
      api::make_pipeline("OptChain", 8, {}, 1, {}, kCount);
  const api::StreamOutcome expected_outcome = expected.place_stream(direct);

  TraceTxSource replay(path);
  api::PlacementPipeline streamed =
      api::make_pipeline("OptChain", 8, {}, 1, {}, kCount);
  const api::StreamOutcome outcome = streamed.place_stream(replay);

  EXPECT_EQ(outcome.total, expected_outcome.total);
  EXPECT_EQ(outcome.cross, expected_outcome.cross);
  EXPECT_EQ(outcome.shard_sizes, expected_outcome.shard_sizes);
  for (tx::TxIndex i = 0; i < kCount; ++i) {
    ASSERT_EQ(streamed.assignment().shard_of(i),
              expected.assignment().shard_of(i))
        << "tx " << i;
  }
  std::remove(path.c_str());
}

TEST(TraceEquivalenceTest, StreamedTraceMatchesDirectGeneratorSimulation) {
  constexpr std::uint64_t kSeed = 55;
  constexpr std::uint64_t kCount = 1500;
  const std::string path = temp_path("equiv_sim.optx");
  {
    workload::GeneratorTxSource generator({}, kSeed, kCount);
    import_source(generator, path, {.chunk_capacity = 256});
  }

  api::RunSpec spec;
  spec.method = "OptChain";
  spec.num_shards = 4;
  spec.rate_tps = 500.0;

  workload::GeneratorTxSource direct({}, kSeed, kCount);
  const api::RunReport expected = api::simulate(spec, direct);

  TraceTxSource replay(path);
  const api::RunReport report = api::simulate(spec, replay);

  ASSERT_TRUE(report.sim.has_value());
  ASSERT_TRUE(expected.sim.has_value());
  EXPECT_EQ(report.total, expected.total);
  EXPECT_EQ(report.cross, expected.cross);
  EXPECT_EQ(report.sim->committed_txs, expected.sim->committed_txs);
  EXPECT_EQ(report.sim->total_events, expected.sim->total_events);
  EXPECT_DOUBLE_EQ(report.sim->duration_s, expected.sim->duration_s);
  EXPECT_DOUBLE_EQ(report.sim->avg_latency_s, expected.sim->avg_latency_s);
  std::remove(path.c_str());
}

TEST(TraceScenarioTest, TraceSweepReplaysOneImportAcrossCells) {
  constexpr std::uint64_t kSeed = 57;
  constexpr std::uint64_t kCount = 2000;
  const std::string path = temp_path("sweep.optx");
  {
    workload::GeneratorTxSource generator({}, kSeed, kCount);
    import_source(generator, path, {.chunk_capacity = 256});
  }

  api::ScenarioSpec spec;
  spec.name = "trace_sweep";
  spec.mode = api::RunMode::kPlace;
  spec.workload = api::WorkloadKind::kTrace;
  spec.trace.path = path;
  spec.methods = {"OptChain", "Greedy"};
  spec.shards = {4, 8};
  spec.rates = {2000.0};
  spec.seeds = {1};

  const api::Sweep sweep = spec.expand();
  ASSERT_EQ(sweep.cells.size(), 4u);
  for (const api::SweepCell& cell : sweep.cells) {
    EXPECT_EQ(cell.trace.path, path);   // every cell replays the one import
    EXPECT_EQ(cell.trace.begin, 0u);
    EXPECT_EQ(cell.trace.end, kCount);  // 0 = "to end" resolved at expand
    EXPECT_EQ(cell.stream_txs, kCount);
  }

  const api::SweepReport report = api::SweepRunner({.jobs = 2}).run(sweep);
  ASSERT_EQ(report.cells.size(), 4u);
  // Each cell must equal the direct streamed run of the same method/shards.
  for (const api::CellReport& cell : report.cells) {
    api::RunSpec run;
    run.method = cell.method;
    run.num_shards = cell.num_shards;
    workload::GeneratorTxSource direct({}, kSeed, kCount);
    const api::RunReport expected = api::place(run, direct);
    EXPECT_DOUBLE_EQ(cell.cross_txs.mean,
                     static_cast<double>(expected.cross))
        << cell.method << " k=" << cell.num_shards;
  }

  // Windowed trace cells open mid-stream; warm starts are rejected.
  spec.trace.begin = 500;
  spec.trace.end = 1500;
  for (const api::SweepCell& cell : spec.expand().cells) {
    EXPECT_EQ(cell.stream_txs, 1000u);
  }
  spec.warm_ratio = 2;
  EXPECT_THROW(spec.expand(), std::invalid_argument);
  spec.warm_ratio = 0;
  spec.trace.path.clear();
  EXPECT_THROW(spec.expand(), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(TraceImportTest, EdgeListImportRoundTrip) {
  const auto txs = bitcoin_stream(600, 59);
  const std::string tan_path = temp_path("import.tan");
  workload::save_tan_edge_list(workload::build_tan(txs), tan_path);
  const std::string trace_path = temp_path("import_tan.optx");

  const ImportResult result = import_file(tan_path, trace_path);
  EXPECT_EQ(result.txs, txs.size());

  // The trace replays the exact stream the edge-list source synthesizes.
  workload::EdgeListFileTxSource direct(tan_path);
  TraceTxSource replay(trace_path);
  tx::Transaction expected, actual;
  while (direct.next(expected)) {
    ASSERT_TRUE(replay.next(actual));
    expect_same_tx(actual, expected);
  }
  EXPECT_FALSE(replay.next(actual));
  std::remove(tan_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(TraceImportTest, CsvImportParsesInputsAndOutputs) {
  const std::string csv_path = temp_path("import.csv");
  {
    std::ofstream csv(csv_path);
    csv << "# bring-your-own Bitcoin dump\n"
        << "index,inputs,outputs\n"
        << "0,,5000000000:7\n"
        << "1,0:0,2500000000:1 2499990000:2\n"
        << "2,1:0 1:1,4999980000:3\n";
  }
  const std::string trace_path = temp_path("import_csv.optx");
  const ImportResult result = import_file(csv_path, trace_path);
  EXPECT_EQ(result.txs, 3u);

  TraceTxSource replay(trace_path);
  const auto txs = workload::materialize(replay);
  ASSERT_EQ(txs.size(), 3u);
  EXPECT_TRUE(txs[0].is_coinbase());
  EXPECT_EQ(txs[0].outputs,
            (std::vector<tx::TxOut>{{5000000000, 7}}));
  ASSERT_EQ(txs[1].inputs.size(), 1u);
  EXPECT_EQ(txs[1].inputs[0], (tx::OutPoint{0, 0}));
  ASSERT_EQ(txs[1].outputs.size(), 2u);
  EXPECT_EQ(txs[2].inputs,
            (std::vector<tx::OutPoint>{{1, 0}, {1, 1}}));

  // Malformed dumps fail loudly.
  {
    std::ofstream csv(csv_path);
    csv << "0,,1:0\n2,,1:0\n";  // non-dense
  }
  EXPECT_THROW(import_file(csv_path, trace_path, ImportFormat::kCsv),
               std::runtime_error);
  {
    std::ofstream csv(csv_path);
    csv << "0,,1:0\n1,1:0,1:0\n";  // self reference
  }
  EXPECT_THROW(import_file(csv_path, trace_path, ImportFormat::kCsv),
               std::runtime_error);
  std::remove(csv_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(TraceImportTest, SliceEqualsWindowedReplay) {
  const auto txs = bitcoin_stream(1200, 61);
  const std::string path = write_trace(txs, "slice_src.optx", 128);
  const std::string sliced = temp_path("slice_out.optx");

  // Re-export a window as a standalone trace (what `optchain-trace slice`
  // does), then replay it whole: must equal the windowed replay of the
  // original.
  {
    TraceTxSource window(path, 300, 900);
    const ImportResult result = import_source(window, sliced);
    EXPECT_EQ(result.txs, 600u);
  }
  TraceTxSource window(path, 300, 900);
  TraceTxSource standalone(sliced);
  tx::Transaction expected, actual;
  while (window.next(expected)) {
    ASSERT_TRUE(standalone.next(actual));
    expect_same_tx(actual, expected);
  }
  EXPECT_FALSE(standalone.next(actual));
  std::remove(path.c_str());
  std::remove(sliced.c_str());
}

}  // namespace
}  // namespace optchain::trace

// Message-level tree-gossip consensus vs the closed-form ConsensusModel:
// validates the simulator's consensus-time abstraction.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/consensus.hpp"
#include "sim/network.hpp"
#include "sim/tree_gossip.hpp"

namespace optchain::sim {
namespace {

TEST(TreeGossipTest, SingleValidatorRoundIsTwoExchanges) {
  NetworkModel network;
  const Position leader{0.5, 0.5};
  const std::vector<Position> validators{{0.5, 0.5}};  // co-located
  ConsensusConfig consensus;
  consensus.prepare_overhead_s = 0.0;
  consensus.per_tx_validation_s = 0.0;
  const double duration = simulate_tree_gossip_round(
      network, leader, validators, consensus, 0);
  // Two phases x (down + up) x base latency, plus negligible payload time.
  EXPECT_NEAR(duration, 4 * 0.100, 0.02);
}

TEST(TreeGossipTest, DurationGrowsWithCommitteeSize) {
  NetworkModel network;
  Rng rng(1);
  const Position leader{0.5, 0.5};
  ConsensusConfig small_c;
  small_c.committee_size = 16;
  ConsensusConfig big_c;
  big_c.committee_size = 512;
  Rng rng_a(2), rng_b(2);
  const double small = simulate_tree_gossip_round(network, leader, small_c,
                                                  1000, rng_a);
  const double big = simulate_tree_gossip_round(network, leader, big_c, 1000,
                                                rng_b);
  EXPECT_LT(small, big);
}

TEST(TreeGossipTest, DurationGrowsWithBlockFill) {
  NetworkModel network;
  const Position leader{0.2, 0.8};
  Rng rng(3);
  std::vector<Position> validators;
  for (int i = 0; i < 63; ++i) validators.push_back(network.random_position(rng));
  ConsensusConfig consensus;
  const double empty = simulate_tree_gossip_round(network, leader, validators,
                                                  consensus, 0);
  const double full = simulate_tree_gossip_round(network, leader, validators,
                                                 consensus, 2000);
  EXPECT_LT(empty, full);
  // A full 1 MB block adds at least one serialization (0.4 s at 20 Mbps).
  EXPECT_GT(full - empty, 0.4);
}

TEST(TreeGossipTest, WiderTreeIsShallowerAndFaster) {
  NetworkModel network;
  const Position leader{0.5, 0.5};
  Rng rng(4);
  std::vector<Position> validators;
  for (int i = 0; i < 255; ++i) {
    validators.push_back(network.random_position(rng));
  }
  ConsensusConfig consensus;
  TreeGossipConfig narrow;
  narrow.branching = 2;
  TreeGossipConfig wide;
  wide.branching = 16;
  const double deep = simulate_tree_gossip_round(network, leader, validators,
                                                 consensus, 2000, narrow);
  const double shallow = simulate_tree_gossip_round(network, leader,
                                                    validators, consensus,
                                                    2000, wide);
  EXPECT_LT(shallow, deep);
}

TEST(TreeGossipTest, DeterministicForFixedPositions) {
  NetworkModel network;
  const Position leader{0.1, 0.1};
  std::vector<Position> validators{{0.3, 0.3}, {0.9, 0.2}, {0.5, 0.7}};
  ConsensusConfig consensus;
  const double a = simulate_tree_gossip_round(network, leader, validators,
                                              consensus, 500);
  const double b = simulate_tree_gossip_round(network, leader, validators,
                                              consensus, 500);
  EXPECT_DOUBLE_EQ(a, b);
}

/// The closed-form model must stay within a small band of the message-level
/// ground truth across committee sizes and fills — this is the validation of
/// the simulator's consensus abstraction.
struct FidelityCase {
  std::uint32_t committee;
  std::uint32_t txs;
};

class ConsensusFidelityTest : public ::testing::TestWithParam<FidelityCase> {};

TEST_P(ConsensusFidelityTest, ClosedFormTracksMessageLevel) {
  const auto [committee, txs] = GetParam();
  NetworkModel network;
  Rng model_rng(7);
  const Position leader{0.5, 0.5};
  ConsensusConfig consensus;
  consensus.committee_size = committee;

  ConsensusModel model(consensus, network, leader, model_rng);
  const double closed_form = model.round_duration(txs);

  Rng gossip_rng(7);
  const double message_level =
      simulate_tree_gossip_round(network, leader, consensus, txs, gossip_rng);

  EXPECT_GT(closed_form, 0.35 * message_level);
  EXPECT_LT(closed_form, 2.5 * message_level);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConsensusFidelityTest,
    ::testing::Values(FidelityCase{64, 0}, FidelityCase{64, 2000},
                      FidelityCase{256, 1000}, FidelityCase{400, 2000},
                      FidelityCase{400, 200}, FidelityCase{128, 500}),
    [](const ::testing::TestParamInfo<FidelityCase>& param_info) {
      return "c" + std::to_string(param_info.param.committee) + "_t" +
             std::to_string(param_info.param.txs);
    });

}  // namespace
}  // namespace optchain::sim

// Tests for the workload::TxSource streaming seam: generator/span adapter
// equivalence, edge-list file round-trips, and the streaming place_stream /
// Simulation::run overloads.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/placement_pipeline.hpp"
#include "sim/simulation.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/dataset_loader.hpp"
#include "workload/tan_builder.hpp"
#include "workload/tx_source.hpp"

namespace optchain::workload {
namespace {

/// Unique-ish temp path per test (the gtest name keeps them apart).
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TxSourceTest, GeneratorSourceMatchesGenerateCall) {
  constexpr std::uint64_t kSeed = 77;
  constexpr std::size_t kCount = 500;
  BitcoinLikeGenerator generator({}, kSeed);
  const std::vector<tx::Transaction> expected = generator.generate(kCount);

  GeneratorTxSource source({}, kSeed, kCount);
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), kCount);

  tx::Transaction transaction;
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(source.next(transaction)) << "tx " << i;
    EXPECT_EQ(transaction.index, expected[i].index);
    EXPECT_EQ(transaction.inputs, expected[i].inputs);
    EXPECT_EQ(transaction.outputs, expected[i].outputs);
  }
  EXPECT_FALSE(source.next(transaction));
  EXPECT_FALSE(source.next(transaction));  // stays exhausted
}

TEST(TxSourceTest, SpanSourceYieldsEverythingOnce) {
  BitcoinLikeGenerator generator({}, 3);
  const auto txs = generator.generate(100);
  SpanTxSource source(txs);
  const auto drained = materialize(source);
  ASSERT_EQ(drained.size(), txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(drained[i].inputs, txs[i].inputs);
  }
  tx::Transaction transaction;
  EXPECT_FALSE(source.next(transaction));
}

TEST(TxSourceTest, StreamedPlacementMatchesMaterialized) {
  // Same seed ⇒ identical placements whether the stream is materialized
  // up front or pulled transaction by transaction.
  constexpr std::uint64_t kSeed = 5;
  constexpr std::size_t kCount = 2000;
  BitcoinLikeGenerator generator({}, kSeed);
  const auto txs = generator.generate(kCount);

  api::PlacementPipeline materialized = api::make_pipeline("OptChain", 8, txs);
  const api::StreamOutcome expected = materialized.place_stream(txs);

  GeneratorTxSource source({}, kSeed, kCount);
  api::PlacementPipeline streamed =
      api::make_pipeline("OptChain", 8, {}, 1, {}, kCount);
  const api::StreamOutcome outcome = streamed.place_stream(source);

  EXPECT_EQ(outcome.total, expected.total);
  EXPECT_EQ(outcome.cross, expected.cross);
  EXPECT_EQ(outcome.shard_sizes, expected.shard_sizes);
  ASSERT_EQ(streamed.total(), materialized.total());
  for (tx::TxIndex i = 0; i < kCount; ++i) {
    ASSERT_EQ(streamed.assignment().shard_of(i),
              materialized.assignment().shard_of(i))
        << "tx " << i;
  }
}

TEST(TxSourceTest, StreamedWarmStartMatchesMaterialized) {
  constexpr std::size_t kCount = 600;
  BitcoinLikeGenerator generator({}, 11);
  const auto txs = generator.generate(kCount);
  std::vector<std::uint32_t> warm(200);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    warm[i] = static_cast<std::uint32_t>(i % 4);
  }

  api::PlacementPipeline materialized = api::make_pipeline("T2S", 4, txs);
  const auto expected = materialized.place_stream(txs, warm);

  GeneratorTxSource source({}, 11, kCount);
  api::PlacementPipeline streamed =
      api::make_pipeline("T2S", 4, {}, 1, {}, kCount);
  const auto outcome = streamed.place_stream(source, warm);

  EXPECT_EQ(outcome.total, expected.total);
  EXPECT_EQ(outcome.cross, expected.cross);
  EXPECT_EQ(outcome.shard_sizes, expected.shard_sizes);
}

TEST(TxSourceTest, EdgeListFileRoundTrip) {
  // generate -> TaN -> save_tan_edge_list -> EdgeListFileTxSource -> TaN
  // must reproduce the DAG exactly.
  BitcoinLikeGenerator generator({}, 9);
  const auto txs = generator.generate(400);
  const graph::TanDag original = build_tan(txs);
  const std::string path = temp_path("roundtrip.tan");
  save_tan_edge_list(original, path);

  EdgeListFileTxSource source(path);
  const auto replayed = materialize(source);
  ASSERT_EQ(replayed.size(), original.num_nodes());
  const graph::TanDag rebuilt = build_tan(replayed);
  ASSERT_EQ(rebuilt.num_nodes(), original.num_nodes());
  ASSERT_EQ(rebuilt.num_edges(), original.num_edges());
  for (graph::NodeId u = 0; u < original.num_nodes(); ++u) {
    const auto a = original.inputs(u);
    const auto b = rebuilt.inputs(u);
    ASSERT_EQ(std::vector<graph::NodeId>(a.begin(), a.end()),
              std::vector<graph::NodeId>(b.begin(), b.end()))
        << "node " << u;
    EXPECT_EQ(rebuilt.spender_count(u), original.spender_count(u));
  }
  std::remove(path.c_str());
}

TEST(TxSourceTest, EdgeListSourceSynthesizesDistinctOutpoints) {
  // Two spends of the same transaction must consume different vouts, so the
  // simulator's lock/spend ledger sees no false double spends.
  const std::string path = temp_path("spends.tan");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment\n0:\n1: 0\n2: 0\n3: 0 1\n", f);
    std::fclose(f);
  }
  EdgeListFileTxSource source(path);
  const auto txs = materialize(source);
  ASSERT_EQ(txs.size(), 4u);
  EXPECT_TRUE(txs[0].is_coinbase());
  ASSERT_EQ(txs[1].inputs.size(), 1u);
  ASSERT_EQ(txs[2].inputs.size(), 1u);
  EXPECT_EQ(txs[1].inputs[0].tx, 0u);
  EXPECT_EQ(txs[2].inputs[0].tx, 0u);
  EXPECT_NE(txs[1].inputs[0].vout, txs[2].inputs[0].vout);
  ASSERT_EQ(txs[3].inputs.size(), 2u);
  std::remove(path.c_str());
}

TEST(TxSourceTest, EdgeListSourceCountsItsSizeHint) {
  // The cheap first-pass count: exact, cached, and independent of the
  // replay cursor — dataset-driven runs pre-size like generator runs.
  BitcoinLikeGenerator generator({}, 13);
  const auto txs = generator.generate(350);
  const std::string path = temp_path("hinted.tan");
  save_tan_edge_list(build_tan(txs), path);

  EdgeListFileTxSource source(path);
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), txs.size());

  tx::Transaction transaction;
  ASSERT_TRUE(source.next(transaction));  // counting did not consume the
  EXPECT_EQ(transaction.index, 0u);       // replay stream
  EXPECT_EQ(*source.size_hint(), txs.size());  // cached, still exact

  std::uint64_t remaining = 0;
  while (source.next(transaction)) ++remaining;
  EXPECT_EQ(remaining + 1, txs.size());
  std::remove(path.c_str());
}

TEST(TxSourceTest, EdgeListSourceRejectsMalformedInput) {
  const std::string path = temp_path("bad.tan");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("0:\n2: 0\n", f);  // non-dense index
    std::fclose(f);
  }
  EdgeListFileTxSource source(path);
  tx::Transaction transaction;
  ASSERT_TRUE(source.next(transaction));
  EXPECT_THROW(source.next(transaction), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(EdgeListFileTxSource("/nonexistent/file.tan"),
               std::runtime_error);
}

TEST(TxSourceTest, EdgeListStreamPlacesEndToEnd) {
  // A dataset-driven placement run through the streaming pipeline.
  BitcoinLikeGenerator generator({}, 21);
  const auto txs = generator.generate(300);
  const std::string path = temp_path("placed.tan");
  save_tan_edge_list(build_tan(txs), path);

  EdgeListFileTxSource source(path);
  api::PlacementPipeline pipeline = api::make_pipeline("Greedy", 4, {}, 1, {},
                                                       txs.size());
  const api::StreamOutcome outcome = pipeline.place_stream(source);
  EXPECT_EQ(pipeline.total(), txs.size());
  std::uint64_t placed = 0;
  for (const std::uint64_t s : outcome.shard_sizes) placed += s;
  EXPECT_EQ(placed, txs.size());
  std::remove(path.c_str());
}

TEST(TxSourceTest, StreamedSimulationMatchesMaterialized) {
  constexpr std::size_t kCount = 1500;
  BitcoinLikeGenerator generator({}, 31);
  const auto txs = generator.generate(kCount);

  sim::SimConfig config;
  config.num_shards = 4;
  config.tx_rate_tps = 500.0;
  config.consensus.txs_per_block = 100;
  config.consensus.block_bytes = 50'000;
  config.consensus.committee_size = 64;

  api::PlacementPipeline pipeline_a = api::make_pipeline("OptChain", 4, txs);
  const sim::SimResult materialized =
      sim::Simulation(config).run(txs, pipeline_a);

  GeneratorTxSource source({}, 31, kCount);
  api::PlacementPipeline pipeline_b =
      api::make_pipeline("OptChain", 4, {}, 1, {}, kCount);
  const sim::SimResult streamed =
      sim::Simulation(config).run(source, pipeline_b);

  EXPECT_TRUE(streamed.completed);
  EXPECT_EQ(streamed.total_txs, materialized.total_txs);
  EXPECT_EQ(streamed.committed_txs, materialized.committed_txs);
  EXPECT_EQ(streamed.cross_txs, materialized.cross_txs);
  EXPECT_EQ(streamed.total_events, materialized.total_events);
  EXPECT_DOUBLE_EQ(streamed.duration_s, materialized.duration_s);
  EXPECT_DOUBLE_EQ(streamed.avg_latency_s, materialized.avg_latency_s);
  EXPECT_DOUBLE_EQ(streamed.max_latency_s, materialized.max_latency_s);
}

}  // namespace
}  // namespace optchain::workload

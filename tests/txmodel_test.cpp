// Unit tests for src/txmodel: transactions, txids, UTXO-set validation.
#include <gtest/gtest.h>

#include "txmodel/transaction.hpp"
#include "txmodel/utxo_set.hpp"

namespace optchain::tx {
namespace {

Transaction coinbase(TxIndex index, Amount value, WalletId owner) {
  Transaction t;
  t.index = index;
  t.outputs.push_back({value, owner});
  return t;
}

TEST(TransactionTest, CoinbaseDetection) {
  EXPECT_TRUE(coinbase(0, 100, 1).is_coinbase());
  Transaction spend;
  spend.index = 1;
  spend.inputs.push_back({0, 0});
  EXPECT_FALSE(spend.is_coinbase());
}

TEST(TransactionTest, TotalOutput) {
  Transaction t;
  t.outputs.push_back({30, 0});
  t.outputs.push_back({70, 1});
  EXPECT_EQ(t.total_output(), 100);
}

TEST(TransactionTest, DistinctInputTxsDeduplicates) {
  Transaction t;
  t.inputs = {{5, 0}, {5, 1}, {3, 0}, {5, 2}};
  const auto distinct = t.distinct_input_txs();
  ASSERT_EQ(distinct.size(), 2u);
  EXPECT_EQ(distinct[0], 5u);
  EXPECT_EQ(distinct[1], 3u);
}

TEST(TransactionTest, TxidDeterministicAndSensitive) {
  Transaction a = coinbase(0, 100, 1);
  Transaction b = coinbase(0, 100, 1);
  EXPECT_EQ(a.txid(), b.txid());
  b.outputs[0].value = 101;
  EXPECT_NE(a.txid(), b.txid());
  Transaction c = coinbase(1, 100, 1);
  EXPECT_NE(a.txid(), c.txid());
}

TEST(TransactionTest, SerializedSizeScalesWithInputsOutputs) {
  Transaction small = coinbase(0, 1, 0);
  Transaction big;
  big.index = 1;
  for (int i = 0; i < 10; ++i) big.inputs.push_back({0, 0});
  big.outputs.push_back({1, 0});
  EXPECT_GT(big.serialized_size(), small.serialized_size());
  // A 2-in/2-out transaction should be in the neighborhood of the paper's
  // ~500 B average.
  Transaction typical;
  typical.index = 2;
  typical.inputs = {{0, 0}, {0, 1}};
  typical.outputs = {{1, 0}, {1, 1}};
  EXPECT_GE(typical.serialized_size(), 300u);
  EXPECT_LE(typical.serialized_size(), 700u);
}

TEST(UtxoSetTest, ApplyCoinbaseRegistersOutputs) {
  UtxoSet utxo;
  EXPECT_EQ(utxo.apply(coinbase(0, 100, 1)), ValidationError::kOk);
  EXPECT_EQ(utxo.num_txs(), 1u);
  EXPECT_EQ(utxo.num_outputs(0), 1u);
  EXPECT_EQ(utxo.total_unspent_count(), 1u);
  EXPECT_EQ(utxo.total_unspent_value(), 100);
  const auto out = utxo.output({0, 0});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, 100);
  EXPECT_EQ(out->owner, 1u);
  EXPECT_FALSE(utxo.is_spent({0, 0}));
}

TEST(UtxoSetTest, SpendMarksOutputs) {
  UtxoSet utxo;
  ASSERT_EQ(utxo.apply(coinbase(0, 100, 1)), ValidationError::kOk);
  Transaction spend;
  spend.index = 1;
  spend.inputs.push_back({0, 0});
  spend.outputs.push_back({60, 2});
  spend.outputs.push_back({40, 3});
  EXPECT_EQ(utxo.apply(spend), ValidationError::kOk);
  EXPECT_TRUE(utxo.is_spent({0, 0}));
  EXPECT_EQ(utxo.total_unspent_count(), 2u);
  EXPECT_EQ(utxo.total_unspent_value(), 100);
}

TEST(UtxoSetTest, DoubleSpendRejected) {
  UtxoSet utxo;
  ASSERT_EQ(utxo.apply(coinbase(0, 100, 1)), ValidationError::kOk);
  Transaction first;
  first.index = 1;
  first.inputs.push_back({0, 0});
  first.outputs.push_back({100, 2});
  ASSERT_EQ(utxo.apply(first), ValidationError::kOk);

  Transaction second;
  second.index = 2;
  second.inputs.push_back({0, 0});
  second.outputs.push_back({100, 3});
  EXPECT_EQ(utxo.apply(second), ValidationError::kAlreadySpent);
  EXPECT_EQ(utxo.num_txs(), 2u);  // rejected tx not applied
}

TEST(UtxoSetTest, UnknownInputRejected) {
  UtxoSet utxo;
  Transaction spend;
  spend.index = 0;
  spend.inputs.push_back({7, 0});
  spend.outputs.push_back({1, 1});
  EXPECT_EQ(utxo.apply(spend), ValidationError::kUnknownInputTx);
}

TEST(UtxoSetTest, BadVoutRejected) {
  UtxoSet utxo;
  ASSERT_EQ(utxo.apply(coinbase(0, 100, 1)), ValidationError::kOk);
  Transaction spend;
  spend.index = 1;
  spend.inputs.push_back({0, 5});
  spend.outputs.push_back({1, 1});
  EXPECT_EQ(utxo.apply(spend), ValidationError::kBadOutputIndex);
}

TEST(UtxoSetTest, OverspendRejected) {
  UtxoSet utxo;
  ASSERT_EQ(utxo.apply(coinbase(0, 100, 1)), ValidationError::kOk);
  Transaction spend;
  spend.index = 1;
  spend.inputs.push_back({0, 0});
  spend.outputs.push_back({150, 2});
  EXPECT_EQ(utxo.apply(spend), ValidationError::kValueNotConserved);
}

TEST(UtxoSetTest, UnderspendAllowed) {
  // Outputs below inputs = implicit fee; legal.
  UtxoSet utxo;
  ASSERT_EQ(utxo.apply(coinbase(0, 100, 1)), ValidationError::kOk);
  Transaction spend;
  spend.index = 1;
  spend.inputs.push_back({0, 0});
  spend.outputs.push_back({90, 2});
  EXPECT_EQ(utxo.apply(spend), ValidationError::kOk);
  EXPECT_EQ(utxo.total_unspent_value(), 90);
}

TEST(UtxoSetTest, DuplicateInputRejected) {
  UtxoSet utxo;
  ASSERT_EQ(utxo.apply(coinbase(0, 100, 1)), ValidationError::kOk);
  Transaction spend;
  spend.index = 1;
  spend.inputs.push_back({0, 0});
  spend.inputs.push_back({0, 0});
  spend.outputs.push_back({100, 2});
  EXPECT_EQ(utxo.apply(spend), ValidationError::kDuplicateInput);
}

TEST(UtxoSetTest, IndexMismatchRejected) {
  UtxoSet utxo;
  EXPECT_EQ(utxo.apply(coinbase(3, 100, 1)), ValidationError::kIndexMismatch);
}

TEST(UtxoSetTest, ValidateDoesNotMutate) {
  UtxoSet utxo;
  ASSERT_EQ(utxo.apply(coinbase(0, 100, 1)), ValidationError::kOk);
  Transaction spend;
  spend.index = 1;
  spend.inputs.push_back({0, 0});
  spend.outputs.push_back({100, 2});
  EXPECT_EQ(utxo.validate(spend), ValidationError::kOk);
  EXPECT_FALSE(utxo.is_spent({0, 0}));
  EXPECT_EQ(utxo.num_txs(), 1u);
}

TEST(UtxoSetTest, UnspentOutputsListsOnlyLive) {
  UtxoSet utxo;
  Transaction multi = coinbase(0, 100, 1);
  multi.outputs.push_back({50, 2});
  ASSERT_EQ(utxo.apply(multi), ValidationError::kOk);
  Transaction spend;
  spend.index = 1;
  spend.inputs.push_back({0, 0});
  spend.outputs.push_back({100, 3});
  ASSERT_EQ(utxo.apply(spend), ValidationError::kOk);
  const auto unspent = utxo.unspent_outputs(0);
  ASSERT_EQ(unspent.size(), 1u);
  EXPECT_EQ(unspent[0], 1u);
}

TEST(UtxoSetTest, ErrorStringsNonEmpty) {
  for (auto err : {ValidationError::kOk, ValidationError::kUnknownInputTx,
                   ValidationError::kBadOutputIndex,
                   ValidationError::kAlreadySpent,
                   ValidationError::kValueNotConserved,
                   ValidationError::kDuplicateInput,
                   ValidationError::kIndexMismatch}) {
    EXPECT_GT(std::string(to_string(err)).size(), 0u);
  }
}

}  // namespace
}  // namespace optchain::tx

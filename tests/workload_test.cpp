// Tests for the synthetic Bitcoin-like workload: validity of the generated
// stream, determinism, calibration against the paper's Fig. 2 statistics,
// and the dataset round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "graph/dag.hpp"
#include "txmodel/utxo_set.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/dataset_loader.hpp"
#include "workload/tan_builder.hpp"

namespace optchain::workload {
namespace {

TEST(GeneratorTest, FirstTransactionIsCoinbase) {
  BitcoinLikeGenerator gen;
  const tx::Transaction first = gen.next();
  EXPECT_TRUE(first.is_coinbase());
  EXPECT_EQ(first.index, 0u);
}

TEST(GeneratorTest, IndicesAreDense) {
  BitcoinLikeGenerator gen;
  const auto txs = gen.generate(500);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(txs[i].index, i);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  BitcoinLikeGenerator a({}, 99), b({}, 99);
  const auto ta = a.generate(300);
  const auto tb = b.generate(300);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].txid(), tb[i].txid()) << "diverged at " << i;
  }
}

TEST(GeneratorTest, DifferentSeedsDiverge) {
  BitcoinLikeGenerator a({}, 1), b({}, 2);
  const auto ta = a.generate(200);
  const auto tb = b.generate(200);
  int differing = 0;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (!(ta[i].txid() == tb[i].txid())) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(GeneratorTest, EveryTransactionValidAgainstUtxoSet) {
  BitcoinLikeGenerator gen({}, 7);
  tx::UtxoSet utxo;
  for (int i = 0; i < 5000; ++i) {
    const tx::Transaction t = gen.next();
    ASSERT_EQ(utxo.apply(t), tx::ValidationError::kOk)
        << "tx " << i << ": " << tx::to_string(utxo.validate(t));
  }
}

TEST(GeneratorTest, ValueConservedOnSpends) {
  BitcoinLikeGenerator gen({}, 11);
  tx::UtxoSet utxo;
  for (int i = 0; i < 3000; ++i) {
    const tx::Transaction t = gen.next();
    if (!t.is_coinbase()) {
      tx::Amount in_value = 0;
      for (const auto& in : t.inputs) {
        const auto out = utxo.output(in);
        ASSERT_TRUE(out.has_value());
        in_value += out->value;
      }
      EXPECT_EQ(t.total_output(), in_value) << "tx " << i;
    }
    ASSERT_EQ(utxo.apply(t), tx::ValidationError::kOk);
  }
}

TEST(GeneratorTest, CoinbaseCadenceRespected) {
  WorkloadConfig config;
  config.coinbase_interval = 50;
  BitcoinLikeGenerator gen(config, 3);
  const auto txs = gen.generate(1000);
  std::size_t coinbase_count = 0;
  for (const auto& t : txs) {
    if (t.is_coinbase()) ++coinbase_count;
  }
  // Exactly every 50th index is a scheduled coinbase; extra ones appear only
  // if liquidity runs out (rare at these settings).
  EXPECT_GE(coinbase_count, 20u);
  EXPECT_LE(coinbase_count, 30u);
}

// Calibration against the paper's Fig. 2: average degree ~2, the bulk of
// nodes with small degrees.
TEST(GeneratorTest, TanStatisticsMatchPaperShape) {
  BitcoinLikeGenerator gen({}, 5);
  const auto txs = gen.generate(30000);
  const graph::TanDag dag = build_tan(txs);
  const auto stats = graph::compute_degree_stats(dag);

  // Paper (10M prefix): 19.96M edges / 10M nodes ≈ 2.0.
  EXPECT_GT(stats.average_degree, 1.2);
  EXPECT_LT(stats.average_degree, 2.6);

  // Paper Fig. 2b: 86.3% of nodes have input-degree (graph out-degree) < 3;
  // 93.1% have spender-degree (graph in-degree) < 3; 97.6% < 10.
  std::uint64_t input_lt3 = 0, spender_lt3 = 0, spender_lt10 = 0;
  for (graph::NodeId u = 0; u < dag.num_nodes(); ++u) {
    if (dag.input_degree(u) < 3) ++input_lt3;
    if (dag.spender_count(u) < 3) ++spender_lt3;
    if (dag.spender_count(u) < 10) ++spender_lt10;
  }
  const double n = static_cast<double>(dag.num_nodes());
  EXPECT_GT(static_cast<double>(input_lt3) / n, 0.80);
  EXPECT_GT(static_cast<double>(spender_lt3) / n, 0.80);
  EXPECT_GT(static_cast<double>(spender_lt10) / n, 0.95);
}

TEST(GeneratorTest, SpendsExhibitTemporalLocality) {
  BitcoinLikeGenerator gen({}, 13);
  const auto txs = gen.generate(20000);
  // Median spend distance (u - v for edge u->v) should be much smaller than
  // the stream length; the paper's TaN has strong temporal locality.
  std::vector<std::uint64_t> distances;
  for (const auto& t : txs) {
    for (const auto& in : t.inputs) {
      distances.push_back(t.index - in.tx);
    }
  }
  ASSERT_FALSE(distances.empty());
  std::sort(distances.begin(), distances.end());
  const std::uint64_t median = distances[distances.size() / 2];
  EXPECT_LT(median, 2000u);
}

TEST(GeneratorTest, FloodEpisodeRaisesInputDegree) {
  WorkloadConfig config;
  // Plenty of dust liquidity, then a short consolidation attack: the flood
  // window must not outrun the available UTXO pool or the consolidations
  // degenerate to ordinary spends.
  config.coinbase_interval = 20;
  config.flood.start = 10000;
  config.flood.end = 10400;
  config.flood.inputs_per_tx = 10;
  BitcoinLikeGenerator gen(config, 17);
  const auto txs = gen.generate(12000);

  double flood_avg = 0.0, normal_avg = 0.0;
  std::size_t flood_n = 0, normal_n = 0;
  for (const auto& t : txs) {
    if (t.is_coinbase()) continue;
    if (t.index >= config.flood.start && t.index < config.flood.end) {
      flood_avg += static_cast<double>(t.inputs.size());
      ++flood_n;
    } else {
      normal_avg += static_cast<double>(t.inputs.size());
      ++normal_n;
    }
  }
  ASSERT_GT(flood_n, 0u);
  ASSERT_GT(normal_n, 0u);
  EXPECT_GT(flood_avg / static_cast<double>(flood_n),
            3.0 * normal_avg / static_cast<double>(normal_n));
}

TEST(GeneratorTest, WalletPoolGrows) {
  BitcoinLikeGenerator gen({}, 19);
  gen.generate(1000);
  const std::size_t w1 = gen.num_wallets();
  gen.generate(5000);
  EXPECT_GT(gen.num_wallets(), w1);
}

TEST(TanBuilderTest, MatchesTransactionStructure) {
  BitcoinLikeGenerator gen({}, 23);
  const auto txs = gen.generate(2000);
  const graph::TanDag dag = build_tan(txs);
  ASSERT_EQ(dag.num_nodes(), txs.size());
  for (const auto& t : txs) {
    const auto distinct = t.distinct_input_txs();
    EXPECT_EQ(dag.input_degree(t.index), distinct.size());
  }
}

TEST(TanBuilderTest, RejectsOutOfOrder) {
  TanBuilder builder;
  tx::Transaction t;
  t.index = 5;  // builder expects 0
  EXPECT_DEATH(builder.add(t), "Precondition");
}

class DatasetRoundTripTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "optchain_tan_test.txt")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(DatasetRoundTripTest, SaveAndLoad) {
  BitcoinLikeGenerator gen({}, 29);
  const auto txs = gen.generate(1500);
  const graph::TanDag original = build_tan(txs);
  save_tan_edge_list(original, path_);
  const graph::TanDag loaded = load_tan_edge_list(path_);
  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (graph::NodeId u = 0; u < original.num_nodes(); ++u) {
    const auto a = original.inputs(u);
    const auto b = loaded.inputs(u);
    ASSERT_EQ(std::vector<graph::NodeId>(a.begin(), a.end()),
              std::vector<graph::NodeId>(b.begin(), b.end()));
  }
}

TEST_F(DatasetRoundTripTest, RejectsForwardReference) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("0:\n1: 2\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_tan_edge_list(path_), std::runtime_error);
}

TEST_F(DatasetRoundTripTest, RejectsNonDenseIndices) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("0:\n2: 0\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_tan_edge_list(path_), std::runtime_error);
}

TEST_F(DatasetRoundTripTest, SkipsCommentsAndBlanks) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# header\n\n0:\n1: 0\n", f);
    std::fclose(f);
  }
  const graph::TanDag dag = load_tan_edge_list(path_);
  EXPECT_EQ(dag.num_nodes(), 2u);
  EXPECT_EQ(dag.num_edges(), 1u);
}

TEST(DatasetLoaderTest, MissingFileThrows) {
  EXPECT_THROW(load_tan_edge_list("/nonexistent/path/tan.txt"),
               std::runtime_error);
}

// Property sweep over seeds: the generated stream is always UTXO-valid.
class GeneratorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GeneratorPropertyTest, StreamAlwaysValid) {
  BitcoinLikeGenerator gen({}, GetParam());
  tx::UtxoSet utxo;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(utxo.apply(gen.next()), tx::ValidationError::kOk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 100, 1000));

}  // namespace
}  // namespace optchain::workload

// bench-diff — throughput regression gate over BENCH_scale.json reports.
//
// Compares the headline throughput figures of a freshly produced
// bench_scale JSON against a committed baseline (bench/baselines/) and
// turns "the refactor made placement 30% slower" into a red CI run instead
// of a note someone spots weeks later:
//
//   bench-diff --baseline=bench/baselines/BENCH_scale.json \
//              --current=build/BENCH_scale.json
//
// Checked metrics: placement tx/s ("placement" → "tx_per_s") and event
// throughput ("simulation" → "events_per_s"). A regression above --warn
// (default 10%) prints a warning; above --fail (default 25%) the tool exits
// 1. Improvements always pass — the gate is one-sided. Wall-clock noise is
// why the warn band is wide and only the fail band is enforced.
//
// The extractor is a deliberately tolerant scanner (find the section key,
// then the metric key after it) rather than a JSON parser — the repo has no
// JSON reader and the bench schema is flat, ordered and machine-written.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "common/flags.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

/// The number following `"metric_key":` after the first occurrence of
/// `"section_key"` — the bench JSON is ordered, so the first metric key past
/// the section header belongs to that section.
double extract(const std::string& json, const std::string& section_key,
               const std::string& metric_key, const std::string& path) {
  const std::size_t section = json.find("\"" + section_key + "\"");
  if (section == std::string::npos) {
    throw std::runtime_error(path + ": no \"" + section_key + "\" section");
  }
  const std::string needle = "\"" + metric_key + "\":";
  const std::size_t key = json.find(needle, section);
  if (key == std::string::npos) {
    throw std::runtime_error(path + ": no \"" + metric_key + "\" in \"" +
                             section_key + "\"");
  }
  const char* begin = json.c_str() + key + needle.size();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || value <= 0.0) {
    throw std::runtime_error(path + ": unparsable \"" + metric_key + "\"");
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const optchain::Flags flags(argc, argv);
    const std::string baseline_path = flags.get_string("baseline", "");
    const std::string current_path = flags.get_string("current", "");
    if (baseline_path.empty() || current_path.empty()) {
      std::fprintf(stderr,
                   "usage: bench-diff --baseline=PATH --current=PATH "
                   "[--warn=0.10] [--fail=0.25]\n");
      return 2;
    }
    const double warn = flags.get_double("warn", 0.10);
    const double fail = flags.get_double("fail", 0.25);

    const std::string baseline = read_file(baseline_path);
    const std::string current = read_file(current_path);

    struct Metric {
      const char* section;
      const char* key;
      const char* title;
    };
    const Metric metrics[] = {
        {"placement", "tx_per_s", "placement tx/s"},
        {"simulation", "events_per_s", "simulation events/s"},
    };

    int worst = 0;  // 0 = ok, 1 = warned, 2 = failed
    for (const Metric& metric : metrics) {
      const double base =
          extract(baseline, metric.section, metric.key, baseline_path);
      const double cur =
          extract(current, metric.section, metric.key, current_path);
      const double delta = (cur - base) / base;  // negative = regression
      const char* verdict = "ok";
      if (-delta > fail) {
        verdict = "FAIL";
        worst = std::max(worst, 2);
      } else if (-delta > warn) {
        verdict = "WARN";
        worst = std::max(worst, 1);
      }
      std::printf("%-20s baseline %12.0f  current %12.0f  %+6.1f%%  %s\n",
                  metric.title, base, cur, 100.0 * delta, verdict);
    }

    if (worst == 2) {
      std::fprintf(stderr,
                   "bench-diff: throughput regressed more than %.0f%% vs %s\n",
                   100.0 * fail, baseline_path.c_str());
      return 1;
    }
    if (worst == 1) {
      std::printf(
          "bench-diff: regression inside the warn band (>%.0f%%) — not "
          "fatal, worth a look\n",
          100.0 * warn);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench-diff: %s\n", error.what());
    return 2;
  }
}

// optchain-bench — the one binary behind every paper figure and table.
//
//   optchain-bench list                     # name every scenario
//   optchain-bench fig4 [--flags]           # run one scenario
//   optchain-bench dynamic,churn [--flags]  # run several (comma-separated)
//   optchain-bench all [--smoke] [--jobs=N] [--json=BENCH_figs.json]
//
// Each scenario is a registered declarative api::ScenarioSpec (or a custom
// runner for the two non-grid figures) executed by api::SweepRunner; see
// bench/scenarios.{hpp,cpp}. Shared flags:
//
//   --jobs=N          sweep worker threads (results are bit-identical at
//                     any N; default 1; 0 = hardware concurrency)
//   --smoke           CI-sized streams (seconds instead of hours)
//   --json=PATH       machine-readable results, one object per scenario
//   --csv_dir=DIR     also save the figure tables as CSV
//   --seed=S --replicas=R --txs=N --issue_seconds=T
//   plus per-scenario axis overrides (--rates=, --shards=, --rate=, --k=,
//   and the `parallel` scenario's --sim_jobs=1,2,4 worker-thread axis)
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/json_writer.hpp"
#include "common/table.hpp"
#include "scenarios.hpp"

namespace {

using namespace optchain;

int usage() {
  std::fprintf(stderr,
               "usage: optchain-bench <list|all|SCENARIO[,SCENARIO...]> "
               "[--flags]\n"
               "       optchain-bench list   # names every scenario\n"
               "flags: --jobs=N --smoke --json=PATH --csv_dir=DIR --seed=S "
               "--replicas=R --txs=N --methods=A,B\n");
  return 2;
}


int cmd_list() {
  TextTable table({"scenario", "description", "reproduces"});
  for (const bench::Scenario& scenario : bench::scenarios()) {
    table.add_row({scenario.name, scenario.title, scenario.paper_ref});
  }
  table.print();
  std::printf("\nrun one with `optchain-bench <scenario>`, everything with "
              "`optchain-bench all`\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "list") return cmd_list();

  try {
    const Flags flags(argc - 1, argv + 1);
    bench::register_bench_placers();

    JsonWriter json;
    const std::string json_path = flags.get_string("json", "");
    JsonWriter* json_out = json_path.empty() ? nullptr : &json;

    int exit_code = 0;
    if (command == "all") {
      for (const bench::Scenario& scenario : bench::scenarios()) {
        // Wall-clock benchmarks (`parallel`) are excluded from `all` so its
        // JSON stays byte-identical across runs; invoke them by name.
        if (scenario.exclude_from_all) continue;
        const int code = bench::run_scenario(scenario, flags, json_out);
        exit_code = exit_code != 0 ? exit_code : code;
      }
    } else {
      const std::vector<std::string> names = split_csv(command);
      if (names.empty()) return usage();
      for (const std::string& name : names) {
        const bench::Scenario* scenario = bench::find_scenario(name);
        if (scenario == nullptr) {
          std::fprintf(stderr,
                       "optchain-bench: unknown scenario \"%s\" (see "
                       "`optchain-bench list`)\n",
                       name.c_str());
          return 2;
        }
        const int code = bench::run_scenario(*scenario, flags, json_out);
        exit_code = exit_code != 0 ? exit_code : code;
      }
    }
    if (json_out != nullptr) {
      json.save(json_path);
      std::printf("(wrote %s)\n", json_path.c_str());
    }
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "optchain-bench %s: %s\n", command.c_str(),
                 error.what());
    return 1;
  }
}

// optchain — command-line driver for the library, built on the optchain::api
// layer (PlacerRegistry + PlacementPipeline + RunSpec/RunReport).
//
//   optchain generate  --txs=N [--seed=S] [--account] --out=stream.optx
//   optchain stats     --in=stream.optx [--begin=A --end=B]
//   optchain methods                          # list registered strategies
//   optchain place     --in=stream.optx --method=<name> --shards=K
//                      [--begin=A --end=B] [--csv=out.csv]
//   optchain partition --in=stream.optx --shards=K [--epsilon=0.1]
//   optchain simulate  --in=stream.optx --method=<name> --shards=K --rate=TPS
//                      [--begin=A --end=B]
//                      [--protocol=omniledger|rapidchain]
//                      [--fault_rate=P] [--sim_seed=S] [--commit_window=SECS]
//                      [--queue_interval=SECS] [--slowdown=a,b,...]
//                      [--fabric=off|flat|wan|congested] [--regions=R]
//                      [--jitter=SECS]
//                      [--repartition_interval=SECS] [--repartition_budget=N]
//                      [--repartition_window=N] [--csv=out.csv]
//                      [--sim_jobs=N] [--place_jobs=N] [--batch=N]
//                      [--profile] [--trace_out=run.otrace]
//
// Streams are OPTX trace containers (src/trace): `generate` writes the
// chunk-indexed v2 format, and every consumer replays through the streaming
// trace::TraceTxSource — flat OPTX v1 files (the old codec) stay readable.
// `--trace=` is accepted as a synonym for `--in=`, and `--begin=`/`--end=`
// replay a window of the trace (out-of-window parents become external
// funding; see src/trace/trace_source.hpp for the boundary policy). Nothing
// here materializes the stream: a 10M-transaction replay holds one chunk
// plus the engines' own per-transaction state.
//
// The simulate knobs cover every RunSpec operating point the bench
// scenarios sweep: --sim_seed re-rolls the network/consensus sampling
// (replicas), --commit_window / --queue_interval set the Fig. 5-7 metric
// cadences, and --slowdown=a,b,... applies a chronic per-shard slowdown
// (shard s runs a_s times slower; missing entries default to 1).
// --fabric=<preset> routes deliveries through the link-level network fabric
// (sim/fabric/): geo-region latency tiers, bandwidth queues with tail drop,
// jitter and stragglers. --regions= and --jitter= override the preset's
// region count / jitter bound ("--fabric=wan --regions=8 --jitter=0.02").
// --repartition_interval=SECS enables the periodic Metis re-partition
// controller (sim/repartition.hpp; 0 = off); --repartition_budget= caps the
// transaction moves applied per event (0 = unlimited, excess deferred) and
// --repartition_window= snapshots only the most recent N transactions of
// the TaN (0 = the whole graph).
//
// --sim_jobs=N selects the conservative parallel engine (0 = sequential),
// --place_jobs=N / --batch=N the micro-batched placement front-end — both
// bit-identical speed knobs. --profile adds wall-clock engine-phase rows
// (obs::PhaseProfiler: the parallel engine's phase-A/phase-B split, the
// batch front-end's prepare/score/commit) to the report. --trace_out=PATH
// attaches an obs::RunTracer and writes the run's full lifecycle telemetry
// as an .otrace container (per-tx issue→commit spans, blocks, queue/link
// samples, churn/re-partition events) — export to Perfetto with
// `optchain-obs export`; the bytes are identical at any --sim_jobs
// (determinism rule 9).
//
// --method accepts any PlacerRegistry name (case-insensitive): OptChain,
// T2S, Greedy, OmniLedger (alias: Random), LeastLoaded, Static, Metis.
// Stream-dependent methods (Metis, Static without --static parts) need the
// whole window in memory; the CLI materializes it for them and streams for
// everyone else.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/placer_registry.hpp"
#include "api/run_spec.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "graph/dag.hpp"
#include "metis/kway_partitioner.hpp"
#include "obs/run_tracer.hpp"
#include "trace/trace_import.hpp"
#include "trace/trace_source.hpp"
#include "workload/tan_builder.hpp"
#include "workload/tx_source.hpp"

namespace {

using namespace optchain;

int usage() {
  std::fprintf(stderr,
               "usage: optchain "
               "<generate|stats|methods|place|partition|simulate> [--flags]\n"
               "run `optchain <command>` with no flags for that command's "
               "options\n");
  return 2;
}

/// Opens the replay window named by --in= (or its synonym --trace=) plus
/// --begin/--end as a streaming source; v1 and v2 containers both work.
/// --end=0 means "to the end of the trace", matching ScenarioSpec::trace —
/// an empty window is impossible to request, never a silent no-op.
trace::TraceTxSource open_stream(const Flags& flags) {
  std::string path = flags.get_string("in", "");
  if (path.empty()) path = flags.get_string("trace", "");
  if (path.empty()) {
    throw std::runtime_error("--in=<stream.optx> (or --trace=) is required");
  }
  const auto begin = static_cast<std::uint64_t>(flags.get_int("begin", 0));
  const auto end = static_cast<std::uint64_t>(flags.get_int("end", 0));
  return trace::TraceTxSource(path, begin,
                              end == 0 ? trace::TraceTxSource::kToEnd : end);
}

/// Builds the TaN of the whole replay window without materializing the
/// transaction stream (stats/partition need the graph, not the txs).
graph::TanDag stream_tan(workload::TxSource& source) {
  const auto hint = source.size_hint();
  workload::TanBuilder builder(
      static_cast<std::size_t>(hint.value_or(0)));
  tx::Transaction transaction;
  while (source.next(transaction)) builder.add(transaction);
  return std::move(builder).take();
}

/// Stream-dependent strategies (Metis; Static without precomputed parts)
/// need the full window up front; everyone else streams in O(chunk) memory.
bool needs_materialized_stream(const std::string& method) {
  std::string lower = method;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower == "metis" || lower == "static";
}

/// The run description shared by place/simulate, read off the flags.
api::RunSpec spec_from_flags(const Flags& flags) {
  api::RunSpec spec;
  spec.method = flags.get_string("method", "OptChain");
  spec.num_shards = static_cast<std::uint32_t>(flags.get_int("shards", 16));
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.rate_tps = flags.get_double("rate", 2000.0);
  spec.leader_fault_rate = flags.get_double("fault_rate", 0.0);
  spec.sim_seed =
      static_cast<std::uint64_t>(flags.get_int("sim_seed", 42));
  spec.commit_window_s =
      flags.get_double("commit_window", spec.commit_window_s);
  spec.queue_sample_interval_s =
      flags.get_double("queue_interval", spec.queue_sample_interval_s);
  spec.shard_slowdown = flags.get_double_list("slowdown", {});
  if (flags.get_string("protocol", "omniledger") == "rapidchain") {
    spec.protocol = sim::ProtocolMode::kRapidChain;
  }
  // Fabric preset first, then the per-knob overrides on top of it.
  spec.fabric = sim::fabric_preset(flags.get_string("fabric", "off"));
  const long long regions = flags.get_int("regions", -1);
  if (regions >= 0) {
    spec.fabric.regions = static_cast<std::uint32_t>(regions);
  }
  const double jitter = flags.get_double("jitter", -1.0);
  if (jitter >= 0.0) spec.fabric.max_jitter_s = jitter;
  spec.fabric.validate();
  spec.repartition.interval_s = flags.get_double("repartition_interval", 0.0);
  spec.repartition.budget =
      static_cast<std::uint64_t>(flags.get_int("repartition_budget", 0));
  spec.repartition.window =
      static_cast<std::uint64_t>(flags.get_int("repartition_window", 0));
  spec.repartition.validate();
  // Execution knobs: both are speed knobs, never semantics knobs — results
  // are bit-identical at any value.
  spec.sim_jobs = static_cast<std::uint32_t>(flags.get_int("sim_jobs", 0));
  spec.place_jobs = static_cast<std::uint32_t>(flags.get_int("place_jobs", 0));
  spec.place_batch = static_cast<std::uint32_t>(
      flags.get_int("batch", spec.place_batch));
  // Wall-clock engine-phase profiling (obs::PhaseProfiler) — extra `profile`
  // rows in the report, results untouched.
  spec.profile = flags.get_bool("profile", false);
  return spec;
}

void print_and_maybe_save(const api::RunReport& report, const Flags& flags) {
  const TextTable table = report.to_table();
  table.print();
  const std::string csv = flags.get_string("csv", "");
  if (!csv.empty()) {
    table.save_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
}

int cmd_generate(const Flags& flags) {
  const auto n = static_cast<std::uint64_t>(flags.get_int("txs", 100000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string out = flags.get_string("out", "stream.optx");

  // Generator → trace writer, one transaction at a time: snapshotting a
  // 10M-tx workload costs O(chunk) memory, and the result replays through
  // every --in= consumer (and sweep cells) without regeneration.
  trace::TraceWriterOptions options;
  options.chunk_capacity = static_cast<std::uint32_t>(
      flags.get_int("chunk", trace::kDefaultChunkCapacity));
  trace::ImportResult result;
  if (flags.get_bool("account", false)) {
    workload::AccountGeneratorTxSource source({}, seed, n);
    result = trace::import_source(source, out, options);
  } else {
    workload::GeneratorTxSource source({}, seed, n);
    result = trace::import_source(source, out, options);
  }
  std::printf("wrote %llu transactions to %s\n",
              static_cast<unsigned long long>(result.txs), out.c_str());
  return 0;
}

int cmd_stats(const Flags& flags) {
  trace::TraceTxSource source = open_stream(flags);
  const graph::TanDag dag = stream_tan(source);
  const auto stats = graph::compute_degree_stats(dag);
  TextTable table({"statistic", "value"});
  table.add_row({"transactions", TextTable::fmt_int(
                                     static_cast<long long>(stats.nodes))});
  table.add_row({"TaN edges", TextTable::fmt_int(
                                  static_cast<long long>(stats.edges))});
  table.add_row({"average degree", TextTable::fmt(stats.average_degree, 3)});
  table.add_row({"coinbase/funding txs",
                 TextTable::fmt_int(
                     static_cast<long long>(stats.coinbase_nodes))});
  table.add_row({"unspent frontier",
                 TextTable::fmt_int(
                     static_cast<long long>(stats.unspent_nodes))});
  table.print();
  return 0;
}

int cmd_methods(const Flags& /*flags*/) {
  std::printf("registered placement methods (case-insensitive):\n");
  for (const std::string& name : api::PlacerRegistry::instance().names()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

int cmd_place(const Flags& flags) {
  trace::TraceTxSource source = open_stream(flags);
  const api::RunSpec spec = spec_from_flags(flags);
  api::RunReport report;
  if (needs_materialized_stream(spec.method)) {
    const std::vector<tx::Transaction> txs = workload::materialize(source);
    report = api::place(spec, txs);
  } else {
    report = api::place(spec, source);
  }

  std::printf("%s over %u shards: %.2f %% cross-shard (%llu / %llu)\n",
              report.method.c_str(), report.num_shards,
              100.0 * report.cross_fraction(),
              static_cast<unsigned long long>(report.cross),
              static_cast<unsigned long long>(report.total));
  print_and_maybe_save(report, flags);
  return 0;
}

int cmd_partition(const Flags& flags) {
  trace::TraceTxSource source = open_stream(flags);
  const auto k = static_cast<std::uint32_t>(flags.get_int("shards", 16));
  const graph::TanDag dag = stream_tan(source);
  const graph::Csr undirected = dag.to_undirected();

  metis::PartitionConfig config;
  config.k = k;
  config.imbalance = flags.get_double("epsilon", 0.1);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto parts = metis::partition_kway(undirected, config);
  const auto cut = metis::edge_cut(undirected, parts);
  std::printf("metis %u-way: edge cut %llu of %llu (%.2f %%), balance %.3f\n",
              k, static_cast<unsigned long long>(cut),
              static_cast<unsigned long long>(dag.num_edges()),
              100.0 * static_cast<double>(cut) /
                  static_cast<double>(std::max<std::size_t>(
                      dag.num_edges(), 1)),
              metis::balance_factor(parts, k));
  return 0;
}

int cmd_simulate(const Flags& flags) {
  trace::TraceTxSource source = open_stream(flags);
  api::RunSpec spec = spec_from_flags(flags);
  // --trace_out=PATH captures the run's lifecycle telemetry as an .otrace
  // container (inspect with optchain-obs summarize/export/diff).
  std::unique_ptr<obs::RunTracer> tracer;
  const std::string trace_out = flags.get_string("trace_out", "");
  if (!trace_out.empty()) {
    tracer = std::make_unique<obs::RunTracer>(trace_out);
    spec.observers.push_back(tracer.get());
  }
  api::RunReport report;
  if (needs_materialized_stream(spec.method)) {
    const std::vector<tx::Transaction> txs = workload::materialize(source);
    report = api::simulate(spec, txs);
  } else {
    report = api::simulate(spec, source);
  }
  if (tracer != nullptr) {
    const std::uint64_t records = tracer->finish();
    std::printf("wrote %s (%llu trace records)\n", trace_out.c_str(),
                static_cast<unsigned long long>(records));
  }
  print_and_maybe_save(report, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Flags flags(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(flags);
    if (command == "stats") return cmd_stats(flags);
    if (command == "methods") return cmd_methods(flags);
    if (command == "place") return cmd_place(flags);
    if (command == "partition") return cmd_partition(flags);
    if (command == "simulate") return cmd_simulate(flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "optchain %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  return usage();
}

// optchain — command-line driver for the library.
//
//   optchain generate  --txs=N [--seed=S] [--account] --out=stream.bin
//   optchain stats     --in=stream.bin
//   optchain place     --in=stream.bin --method=optchain|t2s|greedy|random
//                      --shards=K
//   optchain partition --in=stream.bin --shards=K [--epsilon=0.1]
//   optchain simulate  --in=stream.bin --method=... --shards=K --rate=TPS
//                      [--protocol=omniledger|rapidchain]
//                      [--fault_rate=P] [--csv=out.csv]
//
// Streams are the binary codec of txmodel/serialization.hpp; `generate`
// creates them, everything else consumes them, so a workload is generated
// once and replayed across experiments.
#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/optchain_placer.hpp"
#include "graph/dag.hpp"
#include "metis/kway_partitioner.hpp"
#include "placement/greedy_placer.hpp"
#include "placement/random_placer.hpp"
#include "sim/simulation.hpp"
#include "stats/metrics.hpp"
#include "txmodel/serialization.hpp"
#include "workload/account_workload.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tan_builder.hpp"

namespace {

using namespace optchain;

int usage() {
  std::fprintf(stderr,
               "usage: optchain <generate|stats|place|partition|simulate> "
               "[--flags]\n"
               "run `optchain <command>` with no flags for that command's "
               "options\n");
  return 2;
}

std::vector<tx::Transaction> load_stream(const Flags& flags) {
  const std::string path = flags.get_string("in", "");
  if (path.empty()) {
    throw std::runtime_error("--in=<stream.bin> is required");
  }
  return tx::load_transactions(path);
}

/// Builds the requested placer over `dag`; `txs` provides stream length for
/// capacity caps.
std::unique_ptr<placement::Placer> make_placer(
    const std::string& method, graph::TanDag& dag,
    std::span<const tx::Transaction> txs) {
  if (method == "optchain") {
    return std::make_unique<core::OptChainPlacer>(dag);
  }
  if (method == "t2s") {
    core::OptChainConfig config;
    config.l2s_weight = 0.0;
    config.expected_txs = txs.size();
    return std::make_unique<core::OptChainPlacer>(dag, config, "T2S");
  }
  if (method == "greedy") {
    return std::make_unique<placement::GreedyPlacer>(txs.size());
  }
  if (method == "random") {
    return std::make_unique<placement::RandomPlacer>();
  }
  throw std::runtime_error("unknown --method: " + method +
                           " (optchain|t2s|greedy|random)");
}

int cmd_generate(const Flags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("txs", 100000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string out = flags.get_string("out", "stream.bin");

  std::vector<tx::Transaction> txs;
  if (flags.get_bool("account", false)) {
    workload::AccountWorkloadGenerator generator({}, seed);
    txs = generator.generate(n);
  } else {
    workload::BitcoinLikeGenerator generator({}, seed);
    txs = generator.generate(n);
  }
  tx::save_transactions(txs, out);
  std::printf("wrote %zu transactions to %s\n", txs.size(), out.c_str());
  return 0;
}

int cmd_stats(const Flags& flags) {
  const auto txs = load_stream(flags);
  const graph::TanDag dag = workload::build_tan(txs);
  const auto stats = graph::compute_degree_stats(dag);
  TextTable table({"statistic", "value"});
  table.add_row({"transactions", TextTable::fmt_int(
                                     static_cast<long long>(stats.nodes))});
  table.add_row({"TaN edges", TextTable::fmt_int(
                                  static_cast<long long>(stats.edges))});
  table.add_row({"average degree", TextTable::fmt(stats.average_degree, 3)});
  table.add_row({"coinbase/funding txs",
                 TextTable::fmt_int(
                     static_cast<long long>(stats.coinbase_nodes))});
  table.add_row({"unspent frontier",
                 TextTable::fmt_int(
                     static_cast<long long>(stats.unspent_nodes))});
  table.print();
  return 0;
}

int cmd_place(const Flags& flags) {
  const auto txs = load_stream(flags);
  const auto k = static_cast<std::uint32_t>(flags.get_int("shards", 16));
  const std::string method = flags.get_string("method", "optchain");

  graph::TanDag dag;
  const auto placer = make_placer(method, dag, txs);
  placement::ShardAssignment assignment(k);
  stats::CrossTxCounter counter;
  for (const auto& transaction : txs) {
    const auto inputs = transaction.distinct_input_txs();
    dag.add_node(inputs);
    placement::PlacementRequest request;
    request.index = transaction.index;
    request.input_txs = inputs;
    request.hash64 = transaction.txid().low64();
    const auto shard = placer->choose(request, assignment);
    assignment.record(transaction.index, shard);
    placer->notify_placed(request, shard);
    if (!transaction.is_coinbase()) {
      counter.record(assignment.is_cross_shard(inputs, shard));
    }
  }

  std::printf("%s over %u shards: %.2f %% cross-shard (%llu / %llu)\n",
              method.c_str(), k, 100.0 * counter.fraction(),
              static_cast<unsigned long long>(counter.cross()),
              static_cast<unsigned long long>(counter.total()));
  TextTable sizes({"shard", "transactions"});
  for (std::uint32_t s = 0; s < k; ++s) {
    sizes.add_row({std::to_string(s),
                   TextTable::fmt_int(
                       static_cast<long long>(assignment.size_of(s)))});
  }
  sizes.print();
  return 0;
}

int cmd_partition(const Flags& flags) {
  const auto txs = load_stream(flags);
  const auto k = static_cast<std::uint32_t>(flags.get_int("shards", 16));
  const graph::TanDag dag = workload::build_tan(txs);
  const graph::Csr undirected = dag.to_undirected();

  metis::PartitionConfig config;
  config.k = k;
  config.imbalance = flags.get_double("epsilon", 0.1);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto parts = metis::partition_kway(undirected, config);
  const auto cut = metis::edge_cut(undirected, parts);
  std::printf("metis %u-way: edge cut %llu of %llu (%.2f %%), balance %.3f\n",
              k, static_cast<unsigned long long>(cut),
              static_cast<unsigned long long>(dag.num_edges()),
              100.0 * static_cast<double>(cut) /
                  static_cast<double>(std::max<std::size_t>(
                      dag.num_edges(), 1)),
              metis::balance_factor(parts, k));
  return 0;
}

int cmd_simulate(const Flags& flags) {
  const auto txs = load_stream(flags);
  const auto k = static_cast<std::uint32_t>(flags.get_int("shards", 16));
  const std::string method = flags.get_string("method", "optchain");

  sim::SimConfig config;
  config.num_shards = k;
  config.tx_rate_tps = flags.get_double("rate", 2000.0);
  config.leader_fault_rate = flags.get_double("fault_rate", 0.0);
  if (flags.get_string("protocol", "omniledger") == "rapidchain") {
    config.protocol = sim::ProtocolMode::kRapidChain;
  }

  graph::TanDag dag;
  const auto placer = make_placer(method, dag, txs);
  sim::Simulation simulation(config);
  const auto result = simulation.run(txs, *placer, dag);

  TextTable table({"metric", "value"});
  table.add_row({"method", result.placer_name});
  table.add_row({"committed", TextTable::fmt_int(static_cast<long long>(
                                  result.committed_txs))});
  table.add_row({"aborted", TextTable::fmt_int(static_cast<long long>(
                                result.aborted_txs))});
  table.add_row({"cross-shard", TextTable::fmt_percent(
                                    result.cross_fraction())});
  table.add_row({"throughput (tps)", TextTable::fmt(result.throughput_tps,
                                                    0)});
  table.add_row({"avg latency (s)", TextTable::fmt(result.avg_latency_s, 2)});
  table.add_row({"max latency (s)", TextTable::fmt(result.max_latency_s, 2)});
  table.add_row({"completed", result.completed ? "yes" : "no"});
  table.print();

  const std::string csv = flags.get_string("csv", "");
  if (!csv.empty()) {
    table.save_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Flags flags(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(flags);
    if (command == "stats") return cmd_stats(flags);
    if (command == "place") return cmd_place(flags);
    if (command == "partition") return cmd_partition(flags);
    if (command == "simulate") return cmd_simulate(flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "optchain %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  return usage();
}

// optchain — command-line driver for the library, built on the optchain::api
// layer (PlacerRegistry + PlacementPipeline + RunSpec/RunReport).
//
//   optchain generate  --txs=N [--seed=S] [--account] --out=stream.bin
//   optchain stats     --in=stream.bin
//   optchain methods                          # list registered strategies
//   optchain place     --in=stream.bin --method=<name> --shards=K
//                      [--csv=out.csv]
//   optchain partition --in=stream.bin --shards=K [--epsilon=0.1]
//   optchain simulate  --in=stream.bin --method=<name> --shards=K --rate=TPS
//                      [--protocol=omniledger|rapidchain]
//                      [--fault_rate=P] [--sim_seed=S] [--commit_window=SECS]
//                      [--queue_interval=SECS] [--slowdown=a,b,...]
//                      [--csv=out.csv]
//
// The simulate knobs cover every RunSpec operating point the bench
// scenarios sweep: --sim_seed re-rolls the network/consensus sampling
// (replicas), --commit_window / --queue_interval set the Fig. 5-7 metric
// cadences, and --slowdown=a,b,... applies a chronic per-shard slowdown
// (shard s runs a_s times slower; missing entries default to 1).
//
// --method accepts any PlacerRegistry name (case-insensitive): OptChain,
// T2S, Greedy, OmniLedger (alias: Random), LeastLoaded, Static, Metis.
// New strategies registered via PlacerRegistry::register_placer() are
// reachable here with no CLI changes.
//
// Streams are the binary codec of txmodel/serialization.hpp; `generate`
// creates them, everything else consumes them, so a workload is generated
// once and replayed across experiments.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/placer_registry.hpp"
#include "api/run_spec.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "graph/dag.hpp"
#include "metis/kway_partitioner.hpp"
#include "txmodel/serialization.hpp"
#include "workload/account_workload.hpp"
#include "workload/bitcoin_like_generator.hpp"
#include "workload/tan_builder.hpp"

namespace {

using namespace optchain;

int usage() {
  std::fprintf(stderr,
               "usage: optchain "
               "<generate|stats|methods|place|partition|simulate> [--flags]\n"
               "run `optchain <command>` with no flags for that command's "
               "options\n");
  return 2;
}

std::vector<tx::Transaction> load_stream(const Flags& flags) {
  const std::string path = flags.get_string("in", "");
  if (path.empty()) {
    throw std::runtime_error("--in=<stream.bin> is required");
  }
  return tx::load_transactions(path);
}

/// The run description shared by place/simulate, read off the flags.
api::RunSpec spec_from_flags(const Flags& flags) {
  api::RunSpec spec;
  spec.method = flags.get_string("method", "OptChain");
  spec.num_shards = static_cast<std::uint32_t>(flags.get_int("shards", 16));
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.rate_tps = flags.get_double("rate", 2000.0);
  spec.leader_fault_rate = flags.get_double("fault_rate", 0.0);
  spec.sim_seed =
      static_cast<std::uint64_t>(flags.get_int("sim_seed", 42));
  spec.commit_window_s =
      flags.get_double("commit_window", spec.commit_window_s);
  spec.queue_sample_interval_s =
      flags.get_double("queue_interval", spec.queue_sample_interval_s);
  spec.shard_slowdown = flags.get_double_list("slowdown", {});
  if (flags.get_string("protocol", "omniledger") == "rapidchain") {
    spec.protocol = sim::ProtocolMode::kRapidChain;
  }
  return spec;
}

void print_and_maybe_save(const api::RunReport& report, const Flags& flags) {
  const TextTable table = report.to_table();
  table.print();
  const std::string csv = flags.get_string("csv", "");
  if (!csv.empty()) {
    table.save_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
}

int cmd_generate(const Flags& flags) {
  const auto n = static_cast<std::size_t>(flags.get_int("txs", 100000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string out = flags.get_string("out", "stream.bin");

  std::vector<tx::Transaction> txs;
  if (flags.get_bool("account", false)) {
    workload::AccountWorkloadGenerator generator({}, seed);
    txs = generator.generate(n);
  } else {
    workload::BitcoinLikeGenerator generator({}, seed);
    txs = generator.generate(n);
  }
  tx::save_transactions(txs, out);
  std::printf("wrote %zu transactions to %s\n", txs.size(), out.c_str());
  return 0;
}

int cmd_stats(const Flags& flags) {
  const auto txs = load_stream(flags);
  const graph::TanDag dag = workload::build_tan(txs);
  const auto stats = graph::compute_degree_stats(dag);
  TextTable table({"statistic", "value"});
  table.add_row({"transactions", TextTable::fmt_int(
                                     static_cast<long long>(stats.nodes))});
  table.add_row({"TaN edges", TextTable::fmt_int(
                                  static_cast<long long>(stats.edges))});
  table.add_row({"average degree", TextTable::fmt(stats.average_degree, 3)});
  table.add_row({"coinbase/funding txs",
                 TextTable::fmt_int(
                     static_cast<long long>(stats.coinbase_nodes))});
  table.add_row({"unspent frontier",
                 TextTable::fmt_int(
                     static_cast<long long>(stats.unspent_nodes))});
  table.print();
  return 0;
}

int cmd_methods(const Flags& /*flags*/) {
  std::printf("registered placement methods (case-insensitive):\n");
  for (const std::string& name : api::PlacerRegistry::instance().names()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

int cmd_place(const Flags& flags) {
  const auto txs = load_stream(flags);
  const api::RunSpec spec = spec_from_flags(flags);
  const api::RunReport report = api::place(spec, txs);

  std::printf("%s over %u shards: %.2f %% cross-shard (%llu / %llu)\n",
              report.method.c_str(), report.num_shards,
              100.0 * report.cross_fraction(),
              static_cast<unsigned long long>(report.cross),
              static_cast<unsigned long long>(report.total));
  print_and_maybe_save(report, flags);
  return 0;
}

int cmd_partition(const Flags& flags) {
  const auto txs = load_stream(flags);
  const auto k = static_cast<std::uint32_t>(flags.get_int("shards", 16));
  const graph::TanDag dag = workload::build_tan(txs);
  const graph::Csr undirected = dag.to_undirected();

  metis::PartitionConfig config;
  config.k = k;
  config.imbalance = flags.get_double("epsilon", 0.1);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto parts = metis::partition_kway(undirected, config);
  const auto cut = metis::edge_cut(undirected, parts);
  std::printf("metis %u-way: edge cut %llu of %llu (%.2f %%), balance %.3f\n",
              k, static_cast<unsigned long long>(cut),
              static_cast<unsigned long long>(dag.num_edges()),
              100.0 * static_cast<double>(cut) /
                  static_cast<double>(std::max<std::size_t>(
                      dag.num_edges(), 1)),
              metis::balance_factor(parts, k));
  return 0;
}

int cmd_simulate(const Flags& flags) {
  const auto txs = load_stream(flags);
  const api::RunSpec spec = spec_from_flags(flags);
  const api::RunReport report = api::simulate(spec, txs);
  print_and_maybe_save(report, flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Flags flags(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(flags);
    if (command == "stats") return cmd_stats(flags);
    if (command == "methods") return cmd_methods(flags);
    if (command == "place") return cmd_place(flags);
    if (command == "partition") return cmd_partition(flags);
    if (command == "simulate") return cmd_simulate(flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "optchain %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  return usage();
}

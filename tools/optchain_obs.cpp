// optchain-obs — inspect and export .otrace run-trace containers.
//
// The companion tool of obs::RunTracer (src/obs/run_tracer.hpp): a recorded
// run's lifecycle trace can be rendered for ui.perfetto.dev, summarized on
// the terminal, or compared record-by-record against another trace (the
// determinism contract's rule 9 check, runnable by hand).
//
//   optchain-obs export --in=run.otrace --out=run.perfetto.json
//   optchain-obs summarize --in=run.otrace
//   optchain-obs diff --a=seq.otrace --b=par.otrace
//
// Commands:
//   export     write the Chrome trace-event JSON (chrome://tracing and
//              ui.perfetto.dev load it directly)
//   summarize  print record counts, the commit/abort split, and the time
//              span of the trace
//   diff       decode both traces in lockstep and report the first
//              diverging record; exit 0 when identical, 1 when not
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>

#include "common/flags.hpp"
#include "obs/chrome_export.hpp"
#include "obs/otrace_reader.hpp"

namespace {

using optchain::obs::OtraceReader;
using optchain::obs::TraceRecord;
using optchain::obs::TraceRecordType;
using optchain::obs::TraceSummary;

int usage() {
  std::fprintf(stderr,
               "usage: optchain-obs export --in=PATH --out=PATH\n"
               "       optchain-obs summarize --in=PATH\n"
               "       optchain-obs diff --a=PATH --b=PATH\n");
  return 2;
}

const char* type_name(TraceRecordType type) {
  switch (type) {
    case TraceRecordType::kIssue: return "issue";
    case TraceRecordType::kCommit: return "commit";
    case TraceRecordType::kAbort: return "abort";
    case TraceRecordType::kBlock: return "block";
    case TraceRecordType::kQueueSample: return "queue-sample";
    case TraceRecordType::kLinkSample: return "link-sample";
    case TraceRecordType::kShardChange: return "shard-change";
    case TraceRecordType::kRepartition: return "repartition";
  }
  return "?";
}

bool records_equal(const TraceRecord& a, const TraceRecord& b) {
  if (a.type != b.type || a.time != b.time || a.tx != b.tx ||
      a.shard != b.shard || a.latency_s != b.latency_s || a.cross != b.cross ||
      a.joined != b.joined || a.migrated_txs != b.migrated_txs ||
      a.migrated_utxos != b.migrated_utxos ||
      a.deferred_txs != b.deferred_txs || a.queues != b.queues ||
      a.links.size() != b.links.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    if (a.links[i].endpoint != b.links[i].endpoint ||
        a.links[i].backlog_s != b.links[i].backlog_s ||
        a.links[i].drops != b.links[i].drops) {
      return false;
    }
  }
  return true;
}

int run_export(const optchain::Flags& flags) {
  const std::string in = flags.get_string("in", "");
  const std::string out = flags.get_string("out", "");
  if (in.empty() || out.empty()) return usage();
  const std::uint64_t events = optchain::obs::export_chrome_trace(in, out);
  std::printf("optchain-obs: wrote %llu trace events to %s\n",
              static_cast<unsigned long long>(events), out.c_str());
  return 0;
}

int run_summarize(const optchain::Flags& flags) {
  const std::string in = flags.get_string("in", "");
  if (in.empty()) return usage();
  OtraceReader reader(in);
  std::printf("%s: %llu records, %llu chunks (capacity %u)\n", in.c_str(),
              static_cast<unsigned long long>(reader.size()),
              static_cast<unsigned long long>(reader.num_chunks()),
              reader.chunk_capacity());
  const TraceSummary s = reader.summarize();
  std::printf("  issues        %llu (%llu cross-shard)\n",
              static_cast<unsigned long long>(s.issues),
              static_cast<unsigned long long>(s.cross_issues));
  std::printf("  commits       %llu\n",
              static_cast<unsigned long long>(s.commits));
  std::printf("  aborts        %llu\n",
              static_cast<unsigned long long>(s.aborts));
  std::printf("  blocks        %llu\n",
              static_cast<unsigned long long>(s.blocks));
  std::printf("  queue samples %llu\n",
              static_cast<unsigned long long>(s.queue_samples));
  std::printf("  link samples  %llu\n",
              static_cast<unsigned long long>(s.link_samples));
  std::printf("  shard changes %llu\n",
              static_cast<unsigned long long>(s.shard_changes));
  std::printf("  repartitions  %llu\n",
              static_cast<unsigned long long>(s.repartitions));
  std::printf("  time span     %.3f s (worst commit latency %.3f s)\n",
              s.max_time_s, s.max_latency_s);
  return 0;
}

int run_diff(const optchain::Flags& flags) {
  const std::string path_a = flags.get_string("a", "");
  const std::string path_b = flags.get_string("b", "");
  if (path_a.empty() || path_b.empty()) return usage();
  OtraceReader reader_a(path_a);
  OtraceReader reader_b(path_b);
  TraceRecord rec_a;
  TraceRecord rec_b;
  std::uint64_t index = 0;
  for (;; ++index) {
    const bool has_a = reader_a.next(rec_a);
    const bool has_b = reader_b.next(rec_b);
    if (!has_a && !has_b) break;
    if (has_a != has_b) {
      std::printf(
          "traces differ: %s ends after %llu records, %s after %llu\n",
          path_a.c_str(),
          static_cast<unsigned long long>(has_a ? reader_a.size() : index),
          path_b.c_str(),
          static_cast<unsigned long long>(has_b ? reader_b.size() : index));
      return 1;
    }
    if (!records_equal(rec_a, rec_b)) {
      std::printf(
          "traces differ at record %llu: %s t=%.9f vs %s t=%.9f\n",
          static_cast<unsigned long long>(index), type_name(rec_a.type),
          rec_a.time, type_name(rec_b.type), rec_b.time);
      return 1;
    }
  }
  std::printf("traces identical: %llu records\n",
              static_cast<unsigned long long>(index));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const optchain::Flags flags(argc - 1, argv + 1);
    if (command == "export") return run_export(flags);
    if (command == "summarize") return run_summarize(flags);
    if (command == "diff") return run_diff(flags);
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "optchain-obs: %s\n", error.what());
    return 2;
  }
}

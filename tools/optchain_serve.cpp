// optchain-serve — placement-as-a-service throughput daemon.
//
// Replays an imported OPTX trace (PR 5's optchain-trace containers) through
// the micro-batched placement front-end (api::BatchPlacementPipeline) in a
// loop, and reports the sustained placement rate plus per-batch latency
// percentiles — the ROADMAP's "placement as a service" north-star measured
// end to end instead of extrapolated from a one-shot bench.
//
//   optchain-serve --trace=snapshot.optx --duration=5s \
//       --place_jobs=4 --batch=512 --out=BENCH_serve.json
//
// Each pass decodes nothing: the trace window is materialized once at
// startup (use --stream to re-decode from disk every pass instead, which
// measures the container read path too), then every pass builds a fresh
// pipeline and streams the same window through it. --duration=0 serves
// until SIGINT/SIGTERM; any duration also stops early on a signal, then
// still writes the JSON report for whatever completed.
//
// Flags:
//   --trace=PATH       OPTX container to replay (required)
//   --begin=N --end=N  window [begin, end) of the trace (default: all)
//   --method=NAME      PlacerRegistry strategy (default OptChain)
//   --shards=K         shard count (default 16)
//   --seed=S           method seed (default 1)
//   --place_jobs=N     scoring workers per pass (default 1)
//   --batch=N          transactions per micro-batch (default 512)
//   --duration=SECS    serving time budget; 0 = until signal (default 5)
//   --stream           re-decode the trace from disk on every pass
//   --snapshot=SECS    emit a Prometheus-text metrics snapshot every SECS
//                      seconds while serving (0 = off, default 0)
//   --out=PATH         JSON report path (default BENCH_serve.json)
//
// All counters, rates and latency percentiles flow through one
// obs::MetricsRegistry — the final BENCH_serve.json and the periodic
// --snapshot exposition read the same instruments.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "api/batch_pipeline.hpp"
#include "api/placement_pipeline.hpp"
#include "common/flags.hpp"
#include "common/json_writer.hpp"
#include "obs/metrics_registry.hpp"
#include "trace/trace_source.hpp"
#include "workload/tx_source.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using clock = std::chrono::steady_clock;
  try {
    const optchain::Flags flags(argc, argv);
    const std::string trace_path = flags.get_string("trace", "");
    if (trace_path.empty()) {
      std::fprintf(stderr,
                   "usage: optchain-serve --trace=PATH [--duration=SECS] "
                   "[--place_jobs=N] [--batch=N] [--method=NAME] "
                   "[--shards=K] [--begin=N] [--end=N] [--stream] "
                   "[--snapshot=SECS] [--out=PATH]\n");
      return 2;
    }
    const auto begin = static_cast<std::uint64_t>(flags.get_int("begin", 0));
    const auto end = static_cast<std::uint64_t>(flags.get_int(
        "end",
        static_cast<std::int64_t>(optchain::trace::TraceTxSource::kToEnd)));
    const std::string method = flags.get_string("method", "OptChain");
    const auto shards =
        static_cast<std::uint32_t>(flags.get_int("shards", 16));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    optchain::api::BatchConfig batch_config;
    batch_config.jobs =
        static_cast<std::uint32_t>(flags.get_int("place_jobs", 1));
    batch_config.batch_txs =
        static_cast<std::uint32_t>(flags.get_int("batch", 512));
    const double duration_s = flags.get_double("duration", 5.0);
    const bool stream_from_disk = flags.get_bool("stream", false);
    const double snapshot_s = flags.get_double("snapshot", 0.0);
    const std::string out_path =
        flags.get_string("out", "BENCH_serve.json");

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    // Open the window; materialize it unless --stream asked for the
    // decode-every-pass mode.
    optchain::trace::TraceTxSource trace_source(trace_path, begin, end);
    std::vector<optchain::tx::Transaction> window;
    if (!stream_from_disk) {
      window.reserve(static_cast<std::size_t>(
          trace_source.size_hint().value_or(0)));
      optchain::tx::Transaction transaction;
      while (trace_source.next(transaction)) window.push_back(transaction);
    }
    const std::uint64_t window_txs = stream_from_disk
                                         ? trace_source.size_hint().value_or(0)
                                         : window.size();
    if (window_txs == 0) {
      std::fprintf(stderr, "optchain-serve: empty trace window\n");
      return 2;
    }
    std::printf(
        "optchain-serve: %llu txs/window, method=%s shards=%u "
        "place_jobs=%u batch=%u duration=%s\n",
        static_cast<unsigned long long>(window_txs), method.c_str(), shards,
        batch_config.jobs, batch_config.batch_txs,
        duration_s <= 0.0 ? "until-signal"
                          : (std::to_string(duration_s) + "s").c_str());

    // Every number the daemon reports lives in this registry; the pass loop
    // writes, the snapshot emitter and the final JSON read.
    optchain::obs::MetricsRegistry registry;
    optchain::obs::Counter& passes_counter =
        registry.counter("serve.passes");
    optchain::obs::Counter& txs_counter =
        registry.counter("serve.txs_placed");
    optchain::obs::Histogram& batch_latency =
        registry.histogram("serve.batch_latency_us");
    optchain::obs::Gauge& cross_gauge =
        registry.gauge("serve.cross_fraction");
    optchain::obs::Gauge& sustained_gauge =
        registry.gauge("serve.sustained_tx_per_s");
    registry.gauge("serve.window_txs")
        .set(static_cast<double>(window_txs));

    double placement_seconds = 0.0;
    const clock::time_point serve_start = clock::now();
    clock::time_point last_snapshot = serve_start;
    while (g_stop == 0) {
      if (duration_s > 0.0 &&
          std::chrono::duration<double>(clock::now() - serve_start).count() >=
              duration_s) {
        break;
      }
      optchain::api::PlacementPipeline pipeline = optchain::api::make_pipeline(
          method, shards, window, seed, {}, window_txs);
      optchain::api::BatchPlacementPipeline batched(pipeline, batch_config);
      const clock::time_point pass_start = clock::now();
      optchain::api::StreamOutcome outcome;
      if (stream_from_disk) {
        if (passes_counter.value() > 0) trace_source.rewind();
        outcome = batched.place_stream(trace_source);
      } else {
        optchain::workload::SpanTxSource source(window);
        outcome = batched.place_stream(source);
      }
      const double pass_s =
          std::chrono::duration<double>(clock::now() - pass_start).count();
      placement_seconds += pass_s;
      txs_counter.inc(window_txs);
      cross_gauge.set(outcome.fraction());
      for (const double us : batched.batch_latencies_us()) {
        batch_latency.observe(us);
      }
      passes_counter.inc();
      sustained_gauge.set(static_cast<double>(txs_counter.value()) /
                          placement_seconds);
      std::printf("  pass %llu: %.0f tx/s (%.3fs, cross %.2f%%)\n",
                  static_cast<unsigned long long>(passes_counter.value()),
                  static_cast<double>(window_txs) / pass_s, pass_s,
                  100.0 * cross_gauge.value());
      std::fflush(stdout);
      if (snapshot_s > 0.0 &&
          std::chrono::duration<double>(clock::now() - last_snapshot)
                  .count() >= snapshot_s) {
        last_snapshot = clock::now();
        std::printf("--- metrics snapshot ---\n%s--- end snapshot ---\n",
                    registry.prometheus_text().c_str());
        std::fflush(stdout);
      }
    }
    const std::uint64_t passes = passes_counter.value();
    if (passes == 0) {
      std::fprintf(stderr,
                   "optchain-serve: no pass completed inside the budget\n");
      return 1;
    }

    const double sustained_tps = sustained_gauge.value();
    std::printf(
        "sustained %.0f tx/s over %llu passes (%llu txs, %.2fs placement); "
        "batch latency p50 %.1f us, p99 %.1f us\n",
        sustained_tps, static_cast<unsigned long long>(passes),
        static_cast<unsigned long long>(txs_counter.value()),
        placement_seconds, batch_latency.p50(), batch_latency.p99());

    optchain::JsonWriter json;
    json.field("tool", "optchain-serve")
        .field("trace", trace_path)
        .field("method", method)
        .field("shards", shards)
        .field("place_jobs", batch_config.jobs)
        .field("batch", batch_config.batch_txs)
        .field("stream_from_disk", stream_from_disk)
        .field("window_txs", window_txs)
        .field("passes", passes)
        .field("total_txs", txs_counter.value())
        .field("placement_seconds", placement_seconds)
        .field("sustained_tx_per_s", sustained_tps)
        .field("cross_fraction", cross_gauge.value())
        .field("batches", batch_latency.count())
        .field("batch_p50_us", batch_latency.p50())
        .field("batch_p99_us", batch_latency.p99())
        .field("batch_max_us", batch_latency.max());
    registry.write_json(json, "metrics");
    json.save(out_path);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "optchain-serve: %s\n", error.what());
    return 2;
  }
}

// optchain-trace — manage OPTX trace containers (src/trace): import real or
// generated datasets once, inspect them, slice windows, dump them as text.
//
//   optchain-trace import --in=FILE --out=trace.optx
//                         [--format=auto|optx|tan|csv] [--chunk=65536]
//   optchain-trace import --gen=bitcoin|account --txs=N [--seed=S]
//                         --out=trace.optx [--chunk=65536]
//   optchain-trace info   --in=trace.optx [--begin=A --end=B]
//   optchain-trace slice  --in=trace.optx --out=sub.optx --begin=A --end=B
//   optchain-trace cat    --in=trace.optx [--begin=A --end=B] [--limit=N]
//
// `import` accepts existing OPTX v1/v2 containers (re-chunked), the text
// TaN edge-list format, and the CSV inputs/outputs dump documented in
// src/trace/trace_import.hpp — or snapshots a generator (--gen) directly.
// `info` prints the container layout plus streamed degree and
// parent-distance statistics of the (windowed) transaction stream.
// `slice` re-exports a window as a standalone trace (out-of-window parents
// become external funding — the src/trace/trace_source.hpp boundary
// policy). `cat` prints one line per transaction for eyeballing/diffing.
#include <cstdio>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/histogram.hpp"
#include "common/table.hpp"
#include "trace/trace_import.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_source.hpp"
#include "workload/tx_source.hpp"

namespace {

using namespace optchain;

int usage() {
  std::fprintf(
      stderr,
      "usage: optchain-trace <import|info|slice|cat> [--flags]\n"
      "  import --in=FILE [--format=auto|optx|tan|csv] --out=trace.optx\n"
      "  import --gen=bitcoin|account --txs=N [--seed=S] --out=trace.optx\n"
      "  info   --in=trace.optx [--begin=A --end=B]\n"
      "  slice  --in=trace.optx --out=sub.optx --begin=A --end=B\n"
      "  cat    --in=trace.optx [--begin=A --end=B] [--limit=N]\n");
  return 2;
}

std::string required(const Flags& flags, const std::string& name) {
  const std::string value = flags.get_string(name, "");
  if (value.empty()) {
    throw std::runtime_error("--" + name + "= is required");
  }
  return value;
}

trace::TraceWriterOptions writer_options(const Flags& flags) {
  trace::TraceWriterOptions options;
  options.chunk_capacity = static_cast<std::uint32_t>(
      flags.get_int("chunk", trace::kDefaultChunkCapacity));
  return options;
}

/// --end=0 (or absent) means "to the end of the trace", matching
/// ScenarioSpec::trace's window convention.
trace::TraceTxSource open_window(const Flags& flags) {
  const auto begin = static_cast<std::uint64_t>(flags.get_int("begin", 0));
  const auto end = static_cast<std::uint64_t>(flags.get_int("end", 0));
  return trace::TraceTxSource(required(flags, "in"), begin,
                              end == 0 ? trace::TraceTxSource::kToEnd : end);
}

int cmd_import(const Flags& flags) {
  const std::string out = required(flags, "out");
  const std::string gen = flags.get_string("gen", "");
  trace::ImportResult result;
  if (!gen.empty()) {
    const auto n = static_cast<std::uint64_t>(flags.get_int("txs", 100000));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    if (gen == "account") {
      workload::AccountGeneratorTxSource source({}, seed, n);
      result = trace::import_source(source, out, writer_options(flags));
    } else if (gen == "bitcoin") {
      workload::GeneratorTxSource source({}, seed, n);
      result = trace::import_source(source, out, writer_options(flags));
    } else {
      throw std::runtime_error("--gen must be bitcoin or account");
    }
  } else {
    const std::string format_name = flags.get_string("format", "auto");
    trace::ImportFormat format = trace::ImportFormat::kAuto;
    if (format_name == "optx") {
      format = trace::ImportFormat::kOptx;
    } else if (format_name == "tan") {
      format = trace::ImportFormat::kEdgeList;
    } else if (format_name == "csv") {
      format = trace::ImportFormat::kCsv;
    } else if (format_name != "auto") {
      throw std::runtime_error("--format must be auto, optx, tan or csv");
    }
    result = trace::import_file(required(flags, "in"), out, format,
                                writer_options(flags));
  }
  std::printf("imported %llu transactions into %s (%llu bytes)\n",
              static_cast<unsigned long long>(result.txs), out.c_str(),
              static_cast<unsigned long long>(
                  std::filesystem::file_size(out)));
  return 0;
}

int cmd_info(const Flags& flags) {
  const std::string path = required(flags, "in");
  trace::TraceTxSource source = open_window(flags);
  const trace::TraceReader& reader = source.reader();
  const std::uint64_t file_bytes = std::filesystem::file_size(path);

  TextTable layout({"container", "value"});
  layout.add_row({"version", std::to_string(reader.version())});
  layout.add_row({"transactions", TextTable::fmt_int(static_cast<long long>(
                                      reader.size()))});
  layout.add_row({"chunks", TextTable::fmt_int(static_cast<long long>(
                                reader.num_chunks()))});
  layout.add_row({"chunk capacity",
                  TextTable::fmt_int(static_cast<long long>(
                      reader.chunk_capacity()))});
  layout.add_row({"file bytes", TextTable::fmt_int(static_cast<long long>(
                                    file_bytes))});
  if (reader.size() > 0) {
    layout.add_row({"bytes / tx",
                    TextTable::fmt(static_cast<double>(file_bytes) /
                                       static_cast<double>(reader.size()),
                                   2)});
  }
  layout.print();

  // Streamed window statistics, one pass, nothing materialized. A window's
  // out-of-window parents were already dropped by the boundary policy, so
  // the numbers describe exactly the stream a placement run would consume.
  std::uint64_t txs = 0;
  std::uint64_t coinbase = 0;
  std::uint64_t inputs = 0;
  std::uint64_t outputs = 0;
  IntHistogram degrees;   // distinct in-window parents per transaction
  SampleStats distances;  // index - parent index, in-window spends
  std::vector<tx::TxIndex> parents;
  tx::Transaction transaction;
  while (source.next(transaction)) {
    ++txs;
    if (transaction.is_coinbase()) ++coinbase;
    inputs += transaction.inputs.size();
    outputs += transaction.outputs.size();
    transaction.distinct_input_txs(parents);
    degrees.add(parents.size());
    for (const tx::TxIndex parent : parents) {
      distances.add(static_cast<double>(transaction.index - parent));
    }
  }

  std::printf("\n");
  TextTable stats({"window stream", "value"});
  stats.add_row({"transactions", TextTable::fmt_int(static_cast<long long>(
                                     txs))});
  stats.add_row({"coinbase / external-root txs",
                 TextTable::fmt_int(static_cast<long long>(coinbase))});
  stats.add_row({"inputs", TextTable::fmt_int(static_cast<long long>(
                               inputs))});
  stats.add_row({"outputs", TextTable::fmt_int(static_cast<long long>(
                                outputs))});
  if (txs > 0) {
    stats.add_row({"avg TaN in-degree",
                   TextTable::fmt(static_cast<double>(distances.count()) /
                                      static_cast<double>(txs),
                                  3)});
    stats.add_row({"in-degree < 3 (Fig. 2b)",
                   TextTable::fmt_percent(degrees.fraction_below(3))});
  }
  if (distances.count() > 0) {
    stats.add_row({"parent distance mean",
                   TextTable::fmt(distances.mean(), 1)});
    stats.add_row({"parent distance p50",
                   TextTable::fmt(distances.quantile(0.5), 0)});
    stats.add_row({"parent distance p90",
                   TextTable::fmt(distances.quantile(0.9), 0)});
    stats.add_row({"parent distance max",
                   TextTable::fmt(distances.max(), 0)});
  }
  stats.print();
  return 0;
}

int cmd_slice(const Flags& flags) {
  const std::string out = required(flags, "out");
  trace::TraceTxSource source = open_window(flags);
  const trace::ImportResult result =
      trace::import_source(source, out, writer_options(flags));
  std::printf("sliced [%llu, %llu) -> %s (%llu transactions)\n",
              static_cast<unsigned long long>(source.window_begin()),
              static_cast<unsigned long long>(source.window_end()),
              out.c_str(), static_cast<unsigned long long>(result.txs));
  return 0;
}

int cmd_cat(const Flags& flags) {
  trace::TraceTxSource source = open_window(flags);
  const auto limit = static_cast<std::uint64_t>(
      flags.get_int("limit", std::numeric_limits<std::int64_t>::max()));
  tx::Transaction transaction;
  std::uint64_t printed = 0;
  while (printed < limit && source.next(transaction)) {
    std::printf("%u:", transaction.index);
    for (const tx::OutPoint& in : transaction.inputs) {
      std::printf(" %u:%u", in.tx, in.vout);
    }
    std::printf(" |");
    for (const tx::TxOut& txo : transaction.outputs) {
      std::printf(" %lld:%u", static_cast<long long>(txo.value), txo.owner);
    }
    std::printf("\n");
    ++printed;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Flags flags(argc - 1, argv + 1);
    if (command == "import") return cmd_import(flags);
    if (command == "info") return cmd_info(flags);
    if (command == "slice") return cmd_slice(flags);
    if (command == "cat") return cmd_cat(flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "optchain-trace %s: %s\n", command.c_str(),
                 error.what());
    return 1;
  }
  return usage();
}
